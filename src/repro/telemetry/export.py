"""Telemetry exporters: JSONL stream and Chrome trace-event format.

Two consumers, two formats:

* :func:`to_jsonl` / :func:`from_jsonl` — a line-per-record stream for
  pipelines and archival.  Emission is **canonical** (sorted keys,
  compact separators, records in a fixed order), so
  ``to_jsonl(from_jsonl(text)) == text`` byte for byte — a round-trip
  the test suite pins, which makes the format safe to diff and hash.
* :func:`to_chrome_trace` — the Chrome trace-event JSON that Perfetto
  and ``chrome://tracing`` load directly.  Each source trace (sim,
  live, per-attempt degraded) becomes one *process* row; each node
  becomes a *thread* row, so the sim schedule and the measured run sit
  stacked in one timeline with per-op spans aligned by name.
"""

from __future__ import annotations

import json

from .model import TelemetryEvent, Span, TelemetryTrace

__all__ = ["from_jsonl", "to_chrome_trace", "to_jsonl"]


def _dump(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def to_jsonl(trace: TelemetryTrace) -> str:
    """Canonical JSON-lines dump: header, spans, events, then metrics.

    Record kinds (the ``record`` discriminator): ``"telemetry"`` (one
    header with clock + meta), ``"span"``, ``"event"``, ``"counter"``,
    ``"gauge"``, ``"histogram"``.  Order is emission order within each
    kind, so re-exporting a parsed stream reproduces the input exactly.
    """
    lines = [_dump({"record": "telemetry", "clock": trace.clock, "meta": trace.meta})]
    for span in trace.spans:
        lines.append(_dump({"record": "span", **span.to_dict()}))
    for event in trace.events:
        lines.append(_dump({"record": "event", **event.to_dict()}))
    for name, value in trace.counters.items():
        lines.append(_dump({"record": "counter", "name": name, "value": value}))
    for name, samples in trace.gauges.items():
        lines.append(
            _dump(
                {
                    "record": "gauge",
                    "name": name,
                    "samples": [[t, v] for t, v in samples],
                }
            )
        )
    for name, values in trace.histograms.items():
        lines.append(
            _dump({"record": "histogram", "name": name, "values": list(values)})
        )
    return "\n".join(lines) + "\n"


def from_jsonl(text: str) -> TelemetryTrace:
    """Parse a :func:`to_jsonl` stream back into a :class:`TelemetryTrace`.

    Unknown record kinds raise, so the format stays extension-safe the
    same way ``RunTrace.from_json_lines`` is.

    The parser also accepts *streamed* files
    (:class:`repro.telemetry.stream.StreamingRecorder`), where metric
    records repeat: counter records carry cumulative values (the last
    one wins), while gauge/histogram records carry incremental samples
    (they extend per name).  A one-shot :func:`to_jsonl` dump has one
    record per name, so these semantics leave the pinned byte-identical
    round-trip untouched.
    """
    clock = None
    meta: dict = {}
    spans: list[Span] = []
    events: list[TelemetryEvent] = []
    counters: dict[str, float] = {}
    gauges: dict[str, list[tuple[float, float]]] = {}
    histograms: dict[str, list[float]] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.pop("record")
        if kind == "telemetry":
            clock = record["clock"]
            meta = dict(record.get("meta", {}))
        elif kind == "span":
            spans.append(Span.from_dict(record))
        elif kind == "event":
            events.append(TelemetryEvent.from_dict(record))
        elif kind == "counter":
            counters[record["name"]] = record["value"]
        elif kind == "gauge":
            gauges.setdefault(record["name"], []).extend(
                (s[0], s[1]) for s in record["samples"]
            )
        elif kind == "histogram":
            histograms.setdefault(record["name"], []).extend(record["values"])
        else:
            raise ValueError(f"unknown telemetry record kind {kind!r}")
    if clock is None:
        raise ValueError("telemetry stream has no header record")
    return TelemetryTrace(
        clock=clock,
        meta=meta,
        spans=spans,
        events=events,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
    )


def _tid_of(item) -> int:
    """Thread row for a span/event: its node when tagged, else row 0."""
    node = item.attrs.get("node")
    return int(node) + 1 if node is not None else 0


def to_chrome_trace(traces: list[tuple[str, TelemetryTrace]]) -> dict:
    """Render named traces as one Chrome trace-event document.

    ``traces`` is a list of ``(name, trace)`` pairs — e.g.
    ``[("sim", sim_trace), ("live", live_trace)]``.  Each pair becomes a
    process (pid = list position + 1) named ``"<name> (<clock>)"`` so
    the clock source stays visible in the UI; nodes become threads.
    Spans map to complete events (``ph: "X"``), telemetry events to
    instants (``ph: "i"``), gauges to counter tracks (``ph: "C"``).
    Timestamps are microseconds, as the format requires.
    """
    out: list[dict] = []
    for pid0, (name, trace) in enumerate(traces):
        pid = pid0 + 1
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{name} ({trace.clock})"},
            }
        )
        tids = sorted({_tid_of(s) for s in trace.spans} | {_tid_of(e) for e in trace.events})
        for tid in tids:
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"n{tid - 1}" if tid > 0 else "run"},
                }
            )
        for span in trace.spans:
            args = {k: v for k, v in span.attrs.items()}
            if span.op_id:
                args["op_id"] = span.op_id
            if span.parent:
                args["parent"] = span.parent
            out.append(
                {
                    "name": span.name,
                    "cat": span.category or "span",
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": max(0.0, span.duration) * 1e6,
                    "pid": pid,
                    "tid": _tid_of(span),
                    "args": args,
                }
            )
        for event in trace.events:
            args = {k: v for k, v in event.attrs.items()}
            if event.op_id:
                args["op_id"] = event.op_id
            out.append(
                {
                    "name": event.name,
                    "cat": event.category or "event",
                    "ph": "i",
                    "s": "p",
                    "ts": event.time * 1e6,
                    "pid": pid,
                    "tid": _tid_of(event),
                    "args": args,
                }
            )
        for gname, samples in trace.gauges.items():
            for t, v in samples:
                out.append(
                    {
                        "name": gname,
                        "cat": "gauge",
                        "ph": "C",
                        "ts": t * 1e6,
                        "pid": pid,
                        "tid": 0,
                        "args": {gname: v},
                    }
                )
    return {"traceEvents": out, "displayTimeUnit": "ms"}
