"""Log-bucketed latency histograms and the Prometheus exposition path.

The raw telemetry schema keeps histogram *observations* (every sample,
unbucketed) because offline analysis wants exact quantiles.  A live
cluster can't afford that: a daemon serving millions of requests must
answer a ``stats`` scrape in O(buckets), not O(requests).  This module
is the bounded-memory side:

* :class:`LogHistogram` — geometric buckets (default ×2 per bucket from
  1 µs), sparse counts, constant-size regardless of traffic, mergeable
  across processes, with upper-bound quantile estimates.
* :class:`StatsRegistry` — one process's live metrics surface: counters,
  last-value gauges, and latency histograms keyed
  ``latency_s:<op>[:<class>]``, frozen into a JSON-safe snapshot the
  ``stats`` RPC returns.
* :func:`snapshots_to_prometheus` — renders a set of per-process
  snapshots as Prometheus text exposition (families
  ``rpr_latency_seconds`` / ``rpr_events_total`` / ``rpr_value`` /
  ``rpr_uptime_seconds``), and :func:`validate_prometheus_text` — the
  schema check CI runs against a live scrape.

See docs/OBSERVABILITY.md §8 for the bucket scheme and scrape formats.
"""

from __future__ import annotations

import math
import re
import time
from typing import Callable

__all__ = [
    "LogHistogram",
    "StatsRegistry",
    "snapshots_to_prometheus",
    "validate_prometheus_text",
]

#: Default smallest bucket upper bound: 1 µs — below the resolution of
#: anything this system times.
DEFAULT_ORIGIN = 1e-6

#: Default geometric growth per bucket.  ×2 gives ~40 buckets between
#: 1 µs and 20 minutes: coarse enough to stay tiny, fine enough that a
#: p99 estimate is within 2× of truth.
DEFAULT_BASE = 2.0

#: Histogram-name prefix the registry and the Prometheus renderer agree
#: on: ``latency_s:<op>`` or ``latency_s:<op>:<class>``.
LATENCY_PREFIX = "latency_s:"


class LogHistogram:
    """A geometric-bucket histogram with sparse counts.

    Bucket ``i`` covers ``(origin * base**(i-1), origin * base**i]``;
    bucket 0 covers everything at or below ``origin``.  Counts live in a
    dict keyed by bucket index, so an idle histogram costs nothing and a
    busy one costs one int per *occupied* bucket.
    """

    __slots__ = ("base", "origin", "count", "sum", "buckets")

    def __init__(
        self, *, base: float = DEFAULT_BASE, origin: float = DEFAULT_ORIGIN
    ) -> None:
        if base <= 1.0:
            raise ValueError(f"base must exceed 1.0, got {base}")
        if origin <= 0.0:
            raise ValueError(f"origin must be positive, got {origin}")
        self.base = float(base)
        self.origin = float(origin)
        self.count = 0
        self.sum = 0.0
        self.buckets: dict[int, int] = {}

    def bucket_index(self, value: float) -> int:
        if value <= self.origin:
            return 0
        return max(0, math.ceil(math.log(value / self.origin, self.base) - 1e-12))

    def upper_bound(self, index: int) -> float:
        return self.origin * self.base**index

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        idx = self.bucket_index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram in (bucket schemes must match)."""
        if (other.base, other.origin) != (self.base, self.origin):
            raise ValueError(
                f"bucket scheme mismatch: ({self.base}, {self.origin}) vs "
                f"({other.base}, {other.origin})"
            )
        self.count += other.count
        self.sum += other.sum
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 when empty).

        Returns the upper bound of the bucket where the cumulative count
        crosses ``q * count`` — a deterministic, conservative estimate
        whose error is bounded by one bucket's width (a factor of
        ``base``).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for idx in sorted(self.buckets):
            cumulative += self.buckets[idx]
            if cumulative >= target:
                return self.upper_bound(idx)
        return self.upper_bound(max(self.buckets))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ascending — the
        Prometheus bucket shape (``+Inf`` is implied by :attr:`count`)."""
        out: list[tuple[float, int]] = []
        running = 0
        for idx in sorted(self.buckets):
            running += self.buckets[idx]
            out.append((self.upper_bound(idx), running))
        return out

    def to_dict(self) -> dict:
        return {
            "base": self.base,
            "origin": self.origin,
            "count": self.count,
            "sum": self.sum,
            "buckets": {str(idx): n for idx, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogHistogram":
        hist = cls(base=data["base"], origin=data["origin"])
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        hist.buckets = {int(idx): int(n) for idx, n in data["buckets"].items()}
        return hist


class StatsRegistry:
    """One process's live metrics: what the ``stats`` RPC serves.

    Deliberately separate from :class:`~repro.telemetry.model.\
TelemetryRecorder`: the recorder keeps the *full* history for offline
    trace analysis (and may be the null recorder in production), while
    the registry keeps only bounded aggregates and is always on — a
    scrape must work even when span telemetry is off.
    """

    def __init__(
        self,
        node: str,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.node = node
        self._clock = clock
        self._t0 = clock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, LogHistogram] = {}

    def count(self, name: str, delta: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + delta

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LogHistogram()
        hist.observe(value)

    def latency(self, op: str, seconds: float, cls: str = "") -> None:
        """Record one operation latency, optionally tagged with a QoS class."""
        name = f"{LATENCY_PREFIX}{op}:{cls}" if cls else f"{LATENCY_PREFIX}{op}"
        self.observe(name, seconds)

    @property
    def uptime_s(self) -> float:
        return self._clock() - self._t0

    def snapshot(self) -> dict:
        """JSON-safe dump for the ``stats`` RPC response."""
        return {
            "node": self.node,
            "uptime_s": self.uptime_s,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_dict() for name, hist in self.histograms.items()
            },
        }


# --------------------------------------------------------------------------
# Prometheus text exposition


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: dict[str, str]) -> str:
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(pairs.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _latency_labels(name: str, node: str) -> dict[str, str]:
    """Split ``latency_s:<op>[:<class>]`` into exposition labels."""
    rest = name[len(LATENCY_PREFIX) :]
    op, _, cls = rest.partition(":")
    labels = {"node": node, "op": op}
    if cls:
        labels["class"] = cls
    return labels


def snapshots_to_prometheus(snapshots: list[dict]) -> str:
    """Render :meth:`StatsRegistry.snapshot` dicts as Prometheus text.

    Families:

    * ``rpr_uptime_seconds{node}`` — gauge, process uptime.
    * ``rpr_events_total{node,name}`` — counter, every registry counter.
    * ``rpr_value{node,name}`` — gauge, every registry gauge.
    * ``rpr_latency_seconds{node,op[,class]}`` — histogram, every
      ``latency_s:`` histogram, with cumulative ``le`` buckets, ``+Inf``,
      ``_sum`` and ``_count`` per Prometheus convention.
    * ``rpr_observations{node,name}`` — histogram, any other histogram.
    """
    up: list[str] = []
    counters: list[str] = []
    gauges: list[str] = []
    latencies: list[str] = []
    observations: list[str] = []
    for snap in snapshots:
        node = str(snap.get("node", ""))
        up.append(
            f"rpr_uptime_seconds{_labels({'node': node})} "
            f"{_fmt(float(snap.get('uptime_s', 0.0)))}"
        )
        for name in sorted(snap.get("counters", {})):
            value = snap["counters"][name]
            counters.append(
                f"rpr_events_total{_labels({'node': node, 'name': name})} "
                f"{_fmt(value)}"
            )
        for name in sorted(snap.get("gauges", {})):
            value = snap["gauges"][name]
            gauges.append(
                f"rpr_value{_labels({'node': node, 'name': name})} {_fmt(value)}"
            )
        for name in sorted(snap.get("histograms", {})):
            hist = LogHistogram.from_dict(snap["histograms"][name])
            if name.startswith(LATENCY_PREFIX):
                family, labels = "rpr_latency_seconds", _latency_labels(name, node)
                lines = latencies
            else:
                family, labels = "rpr_observations", {"node": node, "name": name}
                lines = observations
            for bound, cum in hist.cumulative():
                lines.append(
                    f"{family}_bucket{_labels({**labels, 'le': _fmt(bound)})} {cum}"
                )
            lines.append(
                f"{family}_bucket{_labels({**labels, 'le': '+Inf'})} {hist.count}"
            )
            lines.append(f"{family}_sum{_labels(labels)} {_fmt(hist.sum)}")
            lines.append(f"{family}_count{_labels(labels)} {hist.count}")
    blocks: list[str] = []
    for family, ftype, help_text, lines in (
        ("rpr_uptime_seconds", "gauge", "Process uptime in seconds.", up),
        ("rpr_events_total", "counter", "Monotonic event counters.", counters),
        ("rpr_value", "gauge", "Last-sampled gauge values.", gauges),
        (
            "rpr_latency_seconds",
            "histogram",
            "Operation latency, log-bucketed.",
            latencies,
        ),
        (
            "rpr_observations",
            "histogram",
            "Non-latency observations, log-bucketed.",
            observations,
        ),
    ):
        if not lines:
            continue
        blocks.append(f"# HELP {family} {help_text}")
        blocks.append(f"# TYPE {family} {ftype}")
        blocks.extend(lines)
    return "\n".join(blocks) + "\n"


_METRIC_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def _parse_value(text: str) -> float | None:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def _base_family(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate_prometheus_text(text: str) -> list[str]:
    """Schema-check a Prometheus exposition; returns a list of problems.

    Checks: line syntax, label syntax, parseable values, every sample
    preceded by a ``# TYPE`` for its family, counter names ending
    ``_total``, and histogram families complete and coherent per label
    set (``+Inf`` bucket present, bucket counts monotonically
    non-decreasing by ``le``, ``_count`` equal to the ``+Inf`` bucket,
    ``_sum`` present).  An empty return means the text is valid.
    """
    errors: list[str] = []
    types: dict[str, str] = {}
    # histogram family -> label-key -> {"buckets": [(le, value)], ...}
    hist: dict[str, dict[str, dict]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    errors.append(f"line {lineno}: unknown TYPE {kind!r}")
                types[parts[2]] = kind
            elif len(parts) >= 2 and parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: unknown comment directive {parts[1]!r}")
            continue
        match = _METRIC_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        labels_text = match.group("labels")
        value = _parse_value(match.group("value"))
        if value is None:
            errors.append(f"line {lineno}: bad value {match.group('value')!r}")
            continue
        labels: dict[str, str] = {}
        if labels_text:
            for part in re.split(r",(?=[a-zA-Z_])", labels_text):
                part = part.strip()
                if not part:
                    continue
                if not _LABEL_RE.match(part):
                    errors.append(f"line {lineno}: bad label {part!r}")
                    continue
                key, _, raw = part.partition("=")
                labels[key] = raw[1:-1]
        family = _base_family(name)
        ftype = types.get(family) or types.get(name)
        if ftype is None:
            errors.append(f"line {lineno}: sample {name!r} has no # TYPE")
            continue
        if ftype == "counter" and not name.endswith("_total"):
            errors.append(f"line {lineno}: counter {name!r} should end _total")
        if ftype == "histogram":
            key = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items()) if k != "le"
            )
            slot = hist.setdefault(family, {}).setdefault(
                key, {"buckets": [], "sum": None, "count": None}
            )
            if name.endswith("_bucket"):
                le = labels.get("le")
                bound = _parse_value(le) if le is not None else None
                if bound is None:
                    errors.append(f"line {lineno}: bucket without valid le label")
                else:
                    slot["buckets"].append((bound, value))
            elif name.endswith("_sum"):
                slot["sum"] = value
            elif name.endswith("_count"):
                slot["count"] = value
    for family, series in hist.items():
        for key, slot in series.items():
            where = f"{family}{{{key}}}"
            buckets = sorted(slot["buckets"])
            if not buckets or buckets[-1][0] != math.inf:
                errors.append(f"{where}: histogram missing +Inf bucket")
                continue
            counts = [c for _, c in buckets]
            if any(later < earlier for earlier, later in zip(counts, counts[1:])):
                errors.append(f"{where}: bucket counts not monotonic")
            if slot["sum"] is None:
                errors.append(f"{where}: histogram missing _sum")
            if slot["count"] is None:
                errors.append(f"{where}: histogram missing _count")
            elif slot["count"] != counts[-1]:
                errors.append(
                    f"{where}: _count {slot['count']} != +Inf bucket {counts[-1]}"
                )
    return errors
