"""The unified span/event model all three plan interpreters emit into.

A repair plan can be *predicted* (the discrete-event engine), *degraded*
(the faulted engine + re-planning loop) or *measured* (the asyncio live
runtime).  Before this module each interpreter spoke its own dialect —
``SimResult`` timings, ``FaultReport`` ledgers, ``LiveOpTiming`` dicts —
and nothing could hold one against another.  Telemetry is the common
tongue:

* a :class:`Span` is one timed thing (an op, a pacing stall, a port
  wait), optionally nested under a parent span and tagged with the op
  identity it belongs to;
* a :class:`TelemetryEvent` is one instant (a node death, an abort, a
  requeue);
* counters / gauges / histograms carry the scalar side (bytes moved,
  token-bucket debt over time, per-chunk stall durations);
* every :class:`TelemetryTrace` declares its **clock source** —
  :data:`CLOCK_SIM` (simulated seconds, exactly reproducible) or
  :data:`CLOCK_WALL` (measured monotonic seconds) — so a consumer can
  never accidentally compare a simulated duration against a wall-clock
  one without knowing it.

Emission goes through a :class:`TelemetryRecorder`; the
:data:`NULL_RECORDER` singleton is falsy and swallows everything, which
is what makes instrumented hot paths zero-cost when telemetry is off
(callers guard with ``if recorder:``).  See ``docs/OBSERVABILITY.md``
§ "Telemetry" for the schema and the sim↔live diff workflow built on
top (:mod:`repro.telemetry.diff`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "CLOCK_SIM",
    "CLOCK_WALL",
    "NULL_RECORDER",
    "NullRecorder",
    "OP_CATEGORY",
    "Span",
    "TelemetryEvent",
    "TelemetryRecorder",
    "TelemetryTrace",
]

#: Clock source of simulated traces: seconds of scheduled time, bit-for-bit
#: reproducible across runs.
CLOCK_SIM = "sim"

#: Clock source of measured traces: monotonic wall-clock seconds relative
#: to the run's origin.
CLOCK_WALL = "wall"

_CLOCKS = (CLOCK_SIM, CLOCK_WALL)

#: Category of spans that represent one whole plan op — the alignment key
#: the sim↔live diff joins on.
OP_CATEGORY = "op"


@dataclass(frozen=True)
class Span:
    """One timed interval: ``[start, end)`` on the trace's clock.

    ``op_id`` ties the span to a plan op (empty for run-level spans);
    ``parent`` names the enclosing span for nested phases (a send op's
    ``port_wait`` carries ``parent=op_id``).  ``attrs`` holds small
    JSON-safe tags (node, peer, nbytes, cross_rack, ...).
    """

    name: str
    start: float
    end: float
    category: str = ""
    op_id: str = ""
    parent: str = ""
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "category": self.category,
            "op_id": self.op_id,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(**data)


@dataclass(frozen=True)
class TelemetryEvent:
    """One instant on the trace's clock (a death, an abort, a requeue)."""

    name: str
    time: float
    category: str = ""
    op_id: str = ""
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "time": self.time,
            "category": self.category,
            "op_id": self.op_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryEvent":
        return cls(**data)


@dataclass
class TelemetryTrace:
    """Everything one interpreter emitted about one run.

    Attributes
    ----------
    clock:
        :data:`CLOCK_SIM` or :data:`CLOCK_WALL` — what the timestamps
        mean.  The diff layer refuses nothing but *labels* everything;
        confusing the two is the bug this field exists to prevent.
    meta:
        Run-level tags (source, scheme, transport, attempt, ...).
    spans / events:
        Timed intervals and instants, in emission order.
    counters:
        Monotonic totals (``bytes.cross_rack``, ``pacing.stalls``).
    gauges:
        Sampled time series: name → list of ``(time, value)`` pairs
        (token-bucket debt, per-link achieved throughput).
    histograms:
        Unbucketed observation lists (per-chunk stall seconds); kept raw
        so consumers pick their own quantiles.
    """

    clock: str
    meta: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    events: list[TelemetryEvent] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    histograms: dict[str, list[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.clock not in _CLOCKS:
            raise ValueError(
                f"unknown clock {self.clock!r}; expected one of {_CLOCKS}"
            )

    @property
    def extent(self) -> float:
        """Latest instant the trace covers (0.0 when empty)."""
        ends = [s.end for s in self.spans] + [e.time for e in self.events]
        return max(ends, default=0.0)

    def op_spans(self) -> dict[str, Span]:
        """The per-op spans, keyed by op id — the diff layer's join key."""
        return {s.op_id: s for s in self.spans if s.category == OP_CATEGORY}

    def shifted(self, offset: float) -> "TelemetryTrace":
        """A copy with every timestamp moved by ``offset`` (same clock)."""
        return TelemetryTrace(
            clock=self.clock,
            meta=dict(self.meta),
            spans=[
                Span(
                    name=s.name,
                    start=s.start + offset,
                    end=s.end + offset,
                    category=s.category,
                    op_id=s.op_id,
                    parent=s.parent,
                    attrs=dict(s.attrs),
                )
                for s in self.spans
            ],
            events=[
                TelemetryEvent(
                    name=e.name,
                    time=e.time + offset,
                    category=e.category,
                    op_id=e.op_id,
                    attrs=dict(e.attrs),
                )
                for e in self.events
            ],
            counters=dict(self.counters),
            gauges={
                name: [(t + offset, v) for t, v in samples]
                for name, samples in self.gauges.items()
            },
            histograms={name: list(vs) for name, vs in self.histograms.items()},
        )

    def merged(self, other: "TelemetryTrace") -> "TelemetryTrace":
        """Concatenate ``other`` onto this trace (clocks must match).

        Counters add; gauges/histograms extend per name.  Used to stitch
        per-attempt degraded traces into one timeline (shift first).
        """
        if other.clock != self.clock:
            raise ValueError(
                f"cannot merge a {other.clock!r}-clock trace into a "
                f"{self.clock!r}-clock one"
            )
        out = TelemetryTrace(
            clock=self.clock,
            meta=dict(self.meta),
            spans=list(self.spans) + list(other.spans),
            events=list(self.events) + list(other.events),
            counters=dict(self.counters),
            gauges={name: list(vs) for name, vs in self.gauges.items()},
            histograms={name: list(vs) for name, vs in self.histograms.items()},
        )
        for name, value in other.counters.items():
            out.counters[name] = out.counters.get(name, 0.0) + value
        for name, samples in other.gauges.items():
            out.gauges.setdefault(name, []).extend(samples)
        for name, values in other.histograms.items():
            out.histograms.setdefault(name, []).extend(values)
        return out

    def to_dict(self) -> dict:
        """JSON-serializable dump; inverse of :meth:`from_dict`."""
        return {
            "clock": self.clock,
            "meta": dict(self.meta),
            "spans": [s.to_dict() for s in self.spans],
            "events": [e.to_dict() for e in self.events],
            "counters": dict(self.counters),
            "gauges": {
                name: [[t, v] for t, v in samples]
                for name, samples in self.gauges.items()
            },
            "histograms": {name: list(vs) for name, vs in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetryTrace":
        return cls(
            clock=data["clock"],
            meta=dict(data.get("meta", {})),
            spans=[Span.from_dict(d) for d in data.get("spans", [])],
            events=[TelemetryEvent.from_dict(d) for d in data.get("events", [])],
            counters=dict(data.get("counters", {})),
            gauges={
                name: [(s[0], s[1]) for s in samples]
                for name, samples in data.get("gauges", {}).items()
            },
            histograms={
                name: list(vs) for name, vs in data.get("histograms", {}).items()
            },
        )


class TelemetryRecorder:
    """Collects spans/events/metrics during a run, then yields the trace.

    Timestamps handed to :meth:`span` / :meth:`event` / :meth:`gauge` are
    in the caller's raw time base (``time.monotonic()`` for the live
    runtime); :meth:`set_origin` pins the run's zero so everything is
    stored origin-relative.  The recorder is truthy, so hot paths can
    guard emission with ``if recorder:`` and hand :data:`NULL_RECORDER`
    (falsy) when telemetry is off.
    """

    enabled = True

    def __init__(
        self,
        clock: str = CLOCK_WALL,
        *,
        meta: dict | None = None,
        time_source: Callable[[], float] | None = None,
    ) -> None:
        if clock not in _CLOCKS:
            raise ValueError(f"unknown clock {clock!r}; expected one of {_CLOCKS}")
        self.clock = clock
        self.meta = dict(meta or {})
        self._time = time_source or (time.monotonic if clock == CLOCK_WALL else None)
        self._origin = 0.0
        self._spans: list[Span] = []
        self._events: list[TelemetryEvent] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, list[tuple[float, float]]] = {}
        self._histograms: dict[str, list[float]] = {}

    def __bool__(self) -> bool:
        return True

    def set_origin(self, origin: float) -> None:
        """Pin the run's t=0 in the raw time base.

        When the time base is the real monotonic clock, the origin's
        unix time is stamped into ``meta["origin_unix"]`` so traces from
        different processes can be re-aligned onto one wall timeline by
        :func:`repro.telemetry.distributed.assemble_trace`.  Injected
        fake time sources get no anchor — their zero means nothing in
        wall time.
        """
        self._origin = origin
        if self.clock == CLOCK_WALL and self._time is time.monotonic:
            self.meta["origin_unix"] = time.time() - (time.monotonic() - origin)

    def now(self) -> float:
        """Current origin-relative time from the recorder's time source."""
        if self._time is None:
            return 0.0
        return self._time() - self._origin

    def raw_now(self) -> float:
        """Current *raw* time-base reading — the base :meth:`span` and
        :meth:`event` expect their timestamps in (origin not subtracted)."""
        if self._time is None:
            return 0.0
        return self._time()

    def span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        category: str = "",
        op_id: str = "",
        parent: str = "",
        **attrs,
    ) -> None:
        """Record a finished span; ``start``/``end`` are raw-time-base."""
        self._spans.append(
            Span(
                name=name,
                start=start - self._origin,
                end=end - self._origin,
                category=category,
                op_id=op_id,
                parent=parent,
                attrs=attrs,
            )
        )

    def event(
        self,
        name: str,
        at: float | None = None,
        *,
        category: str = "",
        op_id: str = "",
        **attrs,
    ) -> None:
        """Record an instant (``at`` defaults to :meth:`now`, raw base)."""
        when = self.now() if at is None else at - self._origin
        self._events.append(
            TelemetryEvent(
                name=name, time=when, category=category, op_id=op_id, attrs=attrs
            )
        )

    def count(self, name: str, delta: float = 1.0) -> None:
        """Bump a monotonic counter."""
        self._counters[name] = self._counters.get(name, 0.0) + delta

    def gauge(self, name: str, value: float, at: float | None = None) -> None:
        """Append one sample to a time series."""
        when = self.now() if at is None else at - self._origin
        self._gauges.setdefault(name, []).append((when, value))

    def observe(self, name: str, value: float) -> None:
        """Append one observation to a histogram."""
        self._histograms.setdefault(name, []).append(value)

    def trace(self) -> TelemetryTrace:
        """Freeze what was recorded into a :class:`TelemetryTrace`."""
        return TelemetryTrace(
            clock=self.clock,
            meta=dict(self.meta),
            spans=list(self._spans),
            events=list(self._events),
            counters=dict(self._counters),
            gauges={name: list(vs) for name, vs in self._gauges.items()},
            histograms={name: list(vs) for name, vs in self._histograms.items()},
        )


class NullRecorder(TelemetryRecorder):
    """The off switch: falsy, accepts everything, records nothing.

    ``if recorder:`` short-circuits every emission site, so an
    instrumented hot path with the null recorder runs the exact same
    instructions as an uninstrumented one (the perf harness bounds the
    residue at <2%).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(CLOCK_WALL, time_source=lambda: 0.0)

    def __bool__(self) -> bool:
        return False

    def span(self, name, start, end, **kwargs) -> None:  # noqa: ARG002
        return None

    def event(self, name, at=None, **kwargs) -> None:  # noqa: ARG002
        return None

    def count(self, name, delta=1.0) -> None:  # noqa: ARG002
        return None

    def gauge(self, name, value, at=None) -> None:  # noqa: ARG002
        return None

    def observe(self, name, value) -> None:  # noqa: ARG002
        return None


#: Shared no-op recorder for "telemetry off" call sites.
NULL_RECORDER = NullRecorder()
