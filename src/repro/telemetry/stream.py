"""Crash-durable streaming telemetry: append JSONL as spans finish.

The store processes originally serialised their whole trace in one
``write_text`` at graceful shutdown — which meant the kill demo's
SIGKILL'd daemon, the single most interesting process in the run, left
*no* telemetry behind.  :class:`StreamingRecorder` fixes that by
appending each record to a line-buffered JSONL file the moment it is
recorded:

* spans and events are written (and flushed to the OS) as they finish,
  so everything up to the instant of a SIGKILL survives on disk;
* counters/gauges/histograms are snapshotted periodically (piggybacked
  on span/event writes, at most every ``metrics_interval_s``) and once
  more at :meth:`close` — counter records carry the cumulative value
  (last one wins on parse), gauge/histogram records carry only the
  samples since the previous snapshot (the parser extends per name);
* the file is opened in append mode, so external rotation (rename the
  file away; the next open recreates it) never loses a record, and
  :func:`~repro.telemetry.export.from_jsonl` accepts the resulting
  stream — including a repeated header after :meth:`reopen` — exactly
  like a one-shot dump.

The recorder still keeps everything in memory too, so ``.trace()`` and
the graceful-shutdown paths behave identically to the base class.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from .model import CLOCK_WALL, TelemetryRecorder

__all__ = ["StreamingRecorder"]

#: Default ceiling on metric-snapshot frequency, seconds.
DEFAULT_METRICS_INTERVAL_S = 1.0


def _dump(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class StreamingRecorder(TelemetryRecorder):
    """A :class:`TelemetryRecorder` that also appends JSONL incrementally.

    Parameters beyond the base class:

    path:
        JSONL file to append to (parent directory must exist).
    metrics_interval_s:
        Minimum spacing between periodic counter/gauge/histogram
        snapshot records.  Snapshots ride on span/event emission — a
        process that records nothing writes nothing — and a final
        snapshot is always written by :meth:`close`.
    """

    def __init__(
        self,
        path: str | Path,
        clock: str = CLOCK_WALL,
        *,
        meta: dict | None = None,
        time_source: Callable[[], float] | None = None,
        metrics_interval_s: float = DEFAULT_METRICS_INTERVAL_S,
    ) -> None:
        super().__init__(clock, meta=meta, time_source=time_source)
        self.path = Path(path)
        self.metrics_interval_s = float(metrics_interval_s)
        self._fh = open(self.path, "a", buffering=1, encoding="utf-8")
        self._header_written = False
        self._last_metrics = 0.0
        # High-water marks: how much of each gauge/histogram list has
        # already been flushed to disk.
        self._gauge_mark: dict[str, int] = {}
        self._hist_mark: dict[str, int] = {}

    # -- writing ------------------------------------------------------

    def _write(self, record: dict) -> None:
        if self._fh.closed:
            return
        if not self._header_written:
            self._header_written = True
            self._fh.write(
                _dump(
                    {"record": "telemetry", "clock": self.clock, "meta": self.meta}
                )
                + "\n"
            )
        self._fh.write(_dump(record) + "\n")

    def _maybe_flush_metrics(self) -> None:
        now = self.now()
        if now - self._last_metrics >= self.metrics_interval_s:
            self.flush_metrics()

    def flush_metrics(self) -> None:
        """Write current counters plus unflushed gauge/histogram samples."""
        self._last_metrics = self.now()
        for name, value in self._counters.items():
            self._write({"record": "counter", "name": name, "value": value})
        for name, samples in self._gauges.items():
            mark = self._gauge_mark.get(name, 0)
            fresh = samples[mark:]
            if fresh:
                self._gauge_mark[name] = len(samples)
                self._write(
                    {
                        "record": "gauge",
                        "name": name,
                        "samples": [[t, v] for t, v in fresh],
                    }
                )
        for name, values in self._histograms.items():
            mark = self._hist_mark.get(name, 0)
            fresh = values[mark:]
            if fresh:
                self._hist_mark[name] = len(values)
                self._write(
                    {"record": "histogram", "name": name, "values": list(fresh)}
                )

    def close(self) -> None:
        """Final metrics snapshot, then close the file (idempotent)."""
        if self._fh.closed:
            return
        self.flush_metrics()
        self._fh.close()

    def reopen(self) -> None:
        """Re-open after external rotation; re-emits the header line."""
        if not self._fh.closed:
            self._fh.close()
        self._fh = open(self.path, "a", buffering=1, encoding="utf-8")
        self._header_written = False

    # -- recording (each also streams) --------------------------------

    def span(self, name, start, end, **kwargs) -> None:
        super().span(name, start, end, **kwargs)
        self._write({"record": "span", **self._spans[-1].to_dict()})
        self._maybe_flush_metrics()

    def event(self, name, at=None, **kwargs) -> None:
        super().event(name, at, **kwargs)
        self._write({"record": "event", **self._events[-1].to_dict()})
        self._maybe_flush_metrics()
