"""Failure scenarios and synthetic data generation."""

from .datagen import encoded_stripe, encoded_stripes, patterned_blocks, random_blocks
from .traces import (
    DAY,
    YEAR,
    FailureEvent,
    RequestEvent,
    poisson_node_failures,
    zipf_object_trace,
    zipf_weights,
)
from .failures import (
    FailureScenario,
    multi_failure_scenarios,
    sample_scenarios,
    scenario_count,
    single_failure_scenarios,
    validate_scenario,
    worst_case_scenarios,
)

__all__ = [
    "DAY",
    "FailureEvent",
    "FailureScenario",
    "encoded_stripe",
    "encoded_stripes",
    "multi_failure_scenarios",
    "patterned_blocks",
    "random_blocks",
    "sample_scenarios",
    "scenario_count",
    "single_failure_scenarios",
    "validate_scenario",
    "poisson_node_failures",
    "worst_case_scenarios",
    "RequestEvent",
    "zipf_object_trace",
    "zipf_weights",
    "YEAR",
]
