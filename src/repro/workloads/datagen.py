"""Synthetic payload generation for concrete (byte-level) experiments.

The paper's testbeds fill 256 MB blocks with file data; any byte content
exercises the same GF paths, so we provide seeded generators with a few
character profiles (uniform random, compressible text-like, zero-heavy)
to keep correctness tests honest about edge patterns.
"""

from __future__ import annotations

import numpy as np

from ..rs import RSCode, Stripe

__all__ = ["random_blocks", "patterned_blocks", "encoded_stripe"]


def random_blocks(n: int, block_size: int, seed: int = 0) -> list[np.ndarray]:
    """``n`` uniform-random uint8 blocks."""
    if n < 1 or block_size < 1:
        raise ValueError("need at least one block of at least one byte")
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, block_size, dtype=np.uint8) for _ in range(n)]


def patterned_blocks(
    n: int, block_size: int, pattern: str = "text", seed: int = 0
) -> list[np.ndarray]:
    """Blocks with non-uniform byte statistics.

    Patterns
    --------
    ``text``:
        ASCII-range bytes (compressible, low entropy).
    ``zeros``:
        Mostly zero with sparse random bytes (sparse-file-like).
    ``ramp``:
        Deterministic position-dependent bytes (catches index mix-ups).
    """
    if n < 1 or block_size < 1:
        raise ValueError("need at least one block of at least one byte")
    rng = np.random.default_rng(seed)
    blocks = []
    for i in range(n):
        if pattern == "text":
            blocks.append(rng.integers(32, 127, block_size, dtype=np.uint8))
        elif pattern == "zeros":
            block = np.zeros(block_size, dtype=np.uint8)
            hot = rng.integers(0, block_size, max(1, block_size // 64))
            block[hot] = rng.integers(1, 256, hot.size, dtype=np.uint8)
            blocks.append(block)
        elif pattern == "ramp":
            blocks.append(
                ((np.arange(block_size) + i * 17) % 256).astype(np.uint8)
            )
        else:
            raise ValueError(f"unknown pattern {pattern!r}")
    return blocks


def encoded_stripe(
    code: RSCode, block_size: int, seed: int = 0, pattern: str | None = None
) -> Stripe:
    """Convenience: generate data and encode a full stripe."""
    if pattern is None:
        data = random_blocks(code.n, block_size, seed)
    else:
        data = patterned_blocks(code.n, block_size, pattern, seed)
    return code.encode_stripe(data)
