"""Synthetic payload generation for concrete (byte-level) experiments.

The paper's testbeds fill 256 MB blocks with file data; any byte content
exercises the same GF paths, so we provide seeded generators with a few
character profiles (uniform random, compressible text-like, zero-heavy)
to keep correctness tests honest about edge patterns.
"""

from __future__ import annotations

import numpy as np

from ..rs import RSCode, Stripe

__all__ = ["random_blocks", "patterned_blocks", "encoded_stripe", "encoded_stripes"]


def random_blocks(n: int, block_size: int, seed: int = 0) -> list[np.ndarray]:
    """``n`` uniform-random uint8 blocks."""
    if n < 1 or block_size < 1:
        raise ValueError("need at least one block of at least one byte")
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, block_size, dtype=np.uint8) for _ in range(n)]


def patterned_blocks(
    n: int, block_size: int, pattern: str = "text", seed: int = 0
) -> list[np.ndarray]:
    """Blocks with non-uniform byte statistics.

    Patterns
    --------
    ``text``:
        ASCII-range bytes (compressible, low entropy).
    ``zeros``:
        Mostly zero with sparse random bytes (sparse-file-like).
    ``ramp``:
        Deterministic position-dependent bytes (catches index mix-ups).
    """
    if n < 1 or block_size < 1:
        raise ValueError("need at least one block of at least one byte")
    rng = np.random.default_rng(seed)
    blocks = []
    for i in range(n):
        if pattern == "text":
            blocks.append(rng.integers(32, 127, block_size, dtype=np.uint8))
        elif pattern == "zeros":
            block = np.zeros(block_size, dtype=np.uint8)
            hot = rng.integers(0, block_size, max(1, block_size // 64))
            block[hot] = rng.integers(1, 256, hot.size, dtype=np.uint8)
            blocks.append(block)
        elif pattern == "ramp":
            blocks.append(
                ((np.arange(block_size) + i * 17) % 256).astype(np.uint8)
            )
        else:
            raise ValueError(f"unknown pattern {pattern!r}")
    return blocks


def encoded_stripe(
    code: RSCode, block_size: int, seed: int = 0, pattern: str | None = None
) -> Stripe:
    """Convenience: generate data and encode a full stripe."""
    if pattern is None:
        data = random_blocks(code.n, block_size, seed)
    else:
        data = patterned_blocks(code.n, block_size, pattern, seed)
    return code.encode_stripe(data)


def encoded_stripes(
    code: RSCode,
    num_stripes: int,
    block_size: int,
    seed: int = 0,
    pattern: str | None = None,
) -> list[Stripe]:
    """Generate and encode many stripes through one batched kernel pass.

    Per-stripe data matches ``encoded_stripe(code, block_size, seed + s,
    pattern)`` byte for byte; only the encode goes through
    :meth:`repro.rs.code.RSCode.encode_many` instead of one
    :meth:`~repro.rs.code.RSCode.encode` call per stripe.
    """
    if num_stripes < 1:
        raise ValueError("need at least one stripe")
    data = np.empty((num_stripes, code.n, block_size), dtype=np.uint8)
    for s in range(num_stripes):
        if pattern is None:
            blocks = random_blocks(code.n, block_size, seed + s)
        else:
            blocks = patterned_blocks(code.n, block_size, pattern, seed + s)
        for j, block in enumerate(blocks):
            data[s, j] = block
    encoded = code.encode_many(data)
    stripes = []
    for s in range(num_stripes):
        stripe = Stripe(code.n, code.k, block_size)
        for bid in range(code.width):
            stripe.set_payload(bid, encoded[s, bid])
        stripes.append(stripe)
    return stripes
