"""Failure-scenario generation.

The evaluation sweeps failures three ways (§5.1):

* single-block: one random data block fails; figures average over every
  possible position ("a random data block ... is assumed to have failed").
* multi-block non-worst: ``2 <= l <= k-1`` failures; bars show the mean
  over **all possible block locations** with min/max caps.
* multi-block worst: exactly ``k`` failures, again over all locations.

Exhaustive enumeration is feasible at these widths, so the default
generators enumerate; a seeded random sampler covers larger sweeps.

All generators share one convention: ``data_only=False`` — failures range
over the full stripe width (data + parity), matching how nodes actually
die.  The paper's single-failure figures restrict to data blocks; callers
reproducing them pass ``data_only=True`` explicitly.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Iterator

from ..rs import RSCode

__all__ = [
    "FailureScenario",
    "single_failure_scenarios",
    "multi_failure_scenarios",
    "worst_case_scenarios",
    "sample_scenarios",
    "scenario_count",
    "validate_scenario",
]


@dataclass(frozen=True)
class FailureScenario:
    """One failure event: which blocks of a stripe were lost."""

    failed_blocks: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.failed_blocks:
            raise ValueError("a failure scenario loses at least one block")
        if list(self.failed_blocks) != sorted(set(self.failed_blocks)):
            raise ValueError("failed blocks must be sorted and unique")

    @property
    def size(self) -> int:
        return len(self.failed_blocks)


def validate_scenario(code: RSCode, scenario: FailureScenario) -> FailureScenario:
    """Check a scenario against a concrete code; returns it unchanged.

    :class:`FailureScenario` alone cannot know the stripe shape, so a
    hand-built scenario with a negative or out-of-range block id (or more
    failures than the code tolerates) used to surface only deep inside
    decode.  Every consumer of externally-supplied scenarios should pass
    them through here first for a clear, early error.

    Raises
    ------
    ValueError
        If any block id falls outside ``[0, code.width)`` or the scenario
        loses more than ``code.k`` blocks.
    """
    bad = [b for b in scenario.failed_blocks if not 0 <= b < code.width]
    if bad:
        raise ValueError(
            f"failure scenario {scenario.failed_blocks} has block ids {bad} "
            f"outside the RS({code.n},{code.k}) stripe (width {code.width})"
        )
    if scenario.size > code.k:
        raise ValueError(
            f"failure scenario loses {scenario.size} blocks but "
            f"RS({code.n},{code.k}) tolerates at most {code.k}"
        )
    return scenario


def single_failure_scenarios(
    code: RSCode, data_only: bool = False
) -> list[FailureScenario]:
    """Every single-block failure across the stripe.

    ``data_only=True`` restricts to data blocks — the paper's
    single-failure experiments ("a random data block ... is assumed to
    have failed").
    """
    last = code.n if data_only else code.width
    return [FailureScenario((b,)) for b in range(last)]


def multi_failure_scenarios(
    code: RSCode, failures: int, data_only: bool = False
) -> list[FailureScenario]:
    """All :math:`\\binom{w}{l}` block-position combinations for ``l``
    failures (the paper's "all possible block locations").

    Raises
    ------
    ValueError
        If ``failures`` exceeds the code's tolerance ``k``.
    """
    if not 1 <= failures <= code.k:
        raise ValueError(
            f"RS({code.n},{code.k}) tolerates 1..{code.k} failures, got {failures}"
        )
    last = code.n if data_only else code.width
    return [
        FailureScenario(tuple(combo))
        for combo in itertools.combinations(range(last), failures)
    ]


def worst_case_scenarios(code: RSCode, data_only: bool = False) -> list[FailureScenario]:
    """All ``k``-failure scenarios — the §4.3 worst case."""
    return multi_failure_scenarios(code, code.k, data_only=data_only)


def scenario_count(code: RSCode, failures: int, data_only: bool = False) -> int:
    """Size of the exhaustive sweep without materialising it."""
    last = code.n if data_only else code.width
    return math.comb(last, failures)


def sample_scenarios(
    code: RSCode,
    failures: int,
    count: int,
    seed: int = 0,
    data_only: bool = False,
    unique: bool = False,
) -> Iterator[FailureScenario]:
    """Seeded random sample of failure scenarios.

    By default draws are independent (with replacement across draws,
    without replacement within one scenario), so small spaces can repeat
    scenarios and silently skew averaged sweeps.  ``unique=True`` rejects
    duplicates; when ``count`` meets or exceeds the whole space it falls
    back to enumerating every scenario (in a seeded shuffle order), so the
    result is never an infinite rejection loop and never repeats.
    """
    if count < 1:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    last = code.n if data_only else code.width
    if not 1 <= failures <= min(code.k, last):
        raise ValueError(f"cannot draw {failures} failures from {last} blocks")
    if unique:
        space = math.comb(last, failures)
        if count >= space:
            scenarios = [
                FailureScenario(tuple(combo))
                for combo in itertools.combinations(range(last), failures)
            ]
            rng.shuffle(scenarios)
            yield from scenarios
            return
        seen: set[tuple[int, ...]] = set()
        while len(seen) < count:
            combo = tuple(sorted(rng.sample(range(last), failures)))
            if combo in seen:
                continue
            seen.add(combo)
            yield FailureScenario(combo)
        return
    for _ in range(count):
        yield FailureScenario(tuple(sorted(rng.sample(range(last), failures))))
