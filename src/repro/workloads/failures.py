"""Failure-scenario generation.

The evaluation sweeps failures three ways (§5.1):

* single-block: one random data block fails; figures average over every
  possible position ("a random data block ... is assumed to have failed").
* multi-block non-worst: ``2 <= l <= k-1`` failures; bars show the mean
  over **all possible block locations** with min/max caps.
* multi-block worst: exactly ``k`` failures, again over all locations.

Exhaustive enumeration is feasible at these widths, so the default
generators enumerate; a seeded random sampler covers larger sweeps.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Iterator

from ..rs import RSCode

__all__ = [
    "FailureScenario",
    "single_failure_scenarios",
    "multi_failure_scenarios",
    "worst_case_scenarios",
    "sample_scenarios",
    "scenario_count",
]


@dataclass(frozen=True)
class FailureScenario:
    """One failure event: which blocks of a stripe were lost."""

    failed_blocks: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.failed_blocks:
            raise ValueError("a failure scenario loses at least one block")
        if list(self.failed_blocks) != sorted(set(self.failed_blocks)):
            raise ValueError("failed blocks must be sorted and unique")

    @property
    def size(self) -> int:
        return len(self.failed_blocks)


def single_failure_scenarios(
    code: RSCode, data_only: bool = True
) -> list[FailureScenario]:
    """Every single-block failure (data blocks only by default, matching
    the paper's single-failure experiments)."""
    last = code.n if data_only else code.width
    return [FailureScenario((b,)) for b in range(last)]


def multi_failure_scenarios(
    code: RSCode, failures: int, data_only: bool = False
) -> list[FailureScenario]:
    """All :math:`\\binom{w}{l}` block-position combinations for ``l``
    failures (the paper's "all possible block locations").

    Raises
    ------
    ValueError
        If ``failures`` exceeds the code's tolerance ``k``.
    """
    if not 1 <= failures <= code.k:
        raise ValueError(
            f"RS({code.n},{code.k}) tolerates 1..{code.k} failures, got {failures}"
        )
    last = code.n if data_only else code.width
    return [
        FailureScenario(tuple(combo))
        for combo in itertools.combinations(range(last), failures)
    ]


def worst_case_scenarios(code: RSCode, data_only: bool = False) -> list[FailureScenario]:
    """All ``k``-failure scenarios — the §4.3 worst case."""
    return multi_failure_scenarios(code, code.k, data_only=data_only)


def scenario_count(code: RSCode, failures: int, data_only: bool = False) -> int:
    """Size of the exhaustive sweep without materialising it."""
    last = code.n if data_only else code.width
    return math.comb(last, failures)


def sample_scenarios(
    code: RSCode, failures: int, count: int, seed: int = 0, data_only: bool = False
) -> Iterator[FailureScenario]:
    """Seeded random sample of failure scenarios (with replacement across
    draws, without replacement within one scenario)."""
    if count < 1:
        raise ValueError("count must be positive")
    rng = random.Random(seed)
    last = code.n if data_only else code.width
    if not 1 <= failures <= min(code.k, last):
        raise ValueError(f"cannot draw {failures} failures from {last} blocks")
    for _ in range(count):
        yield FailureScenario(tuple(sorted(rng.sample(range(last), failures))))
