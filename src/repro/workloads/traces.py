"""Failure traces: seeded operational timelines for store-level replay.

Generates the event sequence an operator would live through — node
failures arriving as a Poisson process over a cluster — so higher layers
(examples, soak tests) can replay months of operation deterministically
against a :class:`repro.system.StorageSystem` or
:class:`repro.multistripe.StripeStore` and verify nothing is ever lost
while accounting the repair work each incident triggers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..cluster import Cluster

__all__ = ["FailureEvent", "poisson_node_failures", "DAY", "YEAR"]

DAY = 24 * 3600.0
YEAR = 365.25 * DAY


@dataclass(frozen=True)
class FailureEvent:
    """One node failure at an absolute time (seconds since trace start)."""

    time: float
    node_id: int


def poisson_node_failures(
    cluster: Cluster,
    node_mtbf: float,
    horizon: float,
    seed: int = 0,
    allow_repeat: bool = True,
) -> Iterator[FailureEvent]:
    """Yield node failures over ``horizon`` seconds, time-ordered.

    Each node fails independently as a Poisson process with mean time
    between failures ``node_mtbf`` (a failed node is assumed repaired /
    replaced promptly, so with ``allow_repeat`` it can fail again later;
    without it each node fails at most once — useful for worst-case
    burn-in stories).

    The aggregate process is simulated directly: exponential interarrival
    at rate ``num_nodes / node_mtbf`` with a uniform victim draw — exact
    for the repeat-allowed model and a close, deterministic approximation
    otherwise.
    """
    if node_mtbf <= 0 or horizon <= 0:
        raise ValueError("node_mtbf and horizon must be positive")
    rng = random.Random(seed)
    nodes = cluster.node_ids()
    failed_once: set[int] = set()
    time = 0.0
    while True:
        active = len(nodes) if allow_repeat else len(nodes) - len(failed_once)
        if active == 0:
            return
        time += rng.expovariate(active / node_mtbf)
        if time > horizon:
            return
        if allow_repeat:
            victim = rng.choice(nodes)
        else:
            victim = rng.choice([n for n in nodes if n not in failed_once])
            failed_once.add(victim)
        yield FailureEvent(time=time, node_id=victim)
