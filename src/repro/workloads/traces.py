"""Failure traces: seeded operational timelines for store-level replay.

Generates the event sequence an operator would live through — node
failures arriving as a Poisson process over a cluster — so higher layers
(examples, soak tests) can replay months of operation deterministically
against a :class:`repro.system.StorageSystem` or
:class:`repro.multistripe.StripeStore` and verify nothing is ever lost
while accounting the repair work each incident triggers.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Iterator

from ..cluster import Cluster

__all__ = [
    "FailureEvent",
    "RequestEvent",
    "poisson_node_failures",
    "zipf_object_trace",
    "zipf_weights",
    "DAY",
    "YEAR",
]

DAY = 24 * 3600.0
YEAR = 365.25 * DAY


@dataclass(frozen=True)
class FailureEvent:
    """One node failure at an absolute time (seconds since trace start)."""

    time: float
    node_id: int


def poisson_node_failures(
    cluster: Cluster,
    node_mtbf: float,
    horizon: float,
    seed: int = 0,
    allow_repeat: bool = True,
) -> Iterator[FailureEvent]:
    """Yield node failures over ``horizon`` seconds, time-ordered.

    Each node fails independently as a Poisson process with mean time
    between failures ``node_mtbf`` (a failed node is assumed repaired /
    replaced promptly, so with ``allow_repeat`` it can fail again later;
    without it each node fails at most once — useful for worst-case
    burn-in stories).

    The aggregate process is simulated directly: exponential interarrival
    at rate ``num_nodes / node_mtbf`` with a uniform victim draw — exact
    for the repeat-allowed model and a close, deterministic approximation
    otherwise.
    """
    if node_mtbf <= 0 or horizon <= 0:
        raise ValueError("node_mtbf and horizon must be positive")
    rng = random.Random(seed)
    nodes = cluster.node_ids()
    failed_once: set[int] = set()
    time = 0.0
    while True:
        active = len(nodes) if allow_repeat else len(nodes) - len(failed_once)
        if active == 0:
            return
        time += rng.expovariate(active / node_mtbf)
        if time > horizon:
            return
        if allow_repeat:
            victim = rng.choice(nodes)
        else:
            victim = rng.choice([n for n in nodes if n not in failed_once])
            failed_once.add(victim)
        yield FailureEvent(time=time, node_id=victim)


@dataclass(frozen=True)
class RequestEvent:
    """One foreground user request in a replayed trace.

    Attributes
    ----------
    time:
        Arrival time in seconds since trace start (open-loop schedule;
        closed-loop replay uses only the order).
    op:
        ``"get"`` or ``"put"``.
    obj:
        Object name the request targets.  GETs always name an object
        from the preloaded working set; PUTs name fresh versioned
        objects so replays never collide with the store's
        no-overwrite rule.
    """

    time: float
    op: str
    obj: str


def zipf_weights(count: int, s: float) -> list[float]:
    """Normalised Zipf(s) popularity over ranks ``0..count-1``.

    ``s = 0`` is uniform; web/storage object popularity is typically
    ``s ≈ 0.9–1.1`` (a small hot set takes most of the traffic).
    """
    if count < 1:
        raise ValueError("count must be positive")
    if s < 0:
        raise ValueError(f"zipf exponent must be non-negative, got {s}")
    raw = [1.0 / (rank + 1) ** s for rank in range(count)]
    total = sum(raw)
    return [w / total for w in raw]


def zipf_object_trace(
    num_objects: int,
    num_requests: int,
    *,
    rate: float = 100.0,
    zipf_s: float = 1.0,
    get_fraction: float = 0.9,
    seed: int = 0,
    name_prefix: str = "obj",
) -> list[RequestEvent]:
    """A seeded hot/cold GET/PUT trace over a preloaded object set.

    Arrivals are Poisson at ``rate`` requests/second (the open-loop
    schedule; closed-loop replay ignores the times).  Each request is a
    GET with probability ``get_fraction``, targeting an object drawn
    from a Zipf(``zipf_s``) popularity over the ``num_objects``
    preloaded names ``<prefix>-<rank>`` — rank 0 is the hottest.  PUTs
    write fresh ``<prefix>-put-<i>`` names.

    Deterministic for a given argument tuple; the driver
    (:mod:`repro.qos.driver`) preloads the working set and replays the
    list against a live store.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if not 0.0 <= get_fraction <= 1.0:
        raise ValueError(f"get_fraction must be in [0, 1], got {get_fraction}")
    rng = random.Random(seed)
    weights = zipf_weights(num_objects, zipf_s)
    cdf: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc)
    events: list[RequestEvent] = []
    time = 0.0
    puts = 0
    for _ in range(num_requests):
        time += rng.expovariate(rate)
        if rng.random() < get_fraction:
            u = rng.random()
            rank = bisect.bisect_left(cdf, u)
            rank = min(rank, num_objects - 1)
            events.append(
                RequestEvent(time=time, op="get", obj=f"{name_prefix}-{rank}")
            )
        else:
            events.append(
                RequestEvent(time=time, op="put", obj=f"{name_prefix}-put-{puts}")
            )
            puts += 1
    return events
