"""Tests for the §4.3 limit formulas, cross-checked against the simulator."""

import pytest

from repro.analysis import (
    is_low_overhead_code,
    nonworst_cross_timesteps,
    nonworst_traffic_blocks,
    worst_case_cross_timesteps,
    worst_case_improvement,
    worst_case_traffic_blocks,
)
from repro.cluster import SIMICS_BANDWIDTH
from repro.experiments import build_simics_environment, run_scheme
from repro.repair import RPRScheme


class TestCodeClassification:
    def test_paper_examples(self):
        # (n+k)/k <= 3: no worst-case gain.
        assert not is_low_overhead_code(4, 2)
        assert not is_low_overhead_code(6, 3)
        assert not is_low_overhead_code(8, 4)
        # (n+k)/k > 3: industry codes.
        assert is_low_overhead_code(6, 2)
        assert is_low_overhead_code(8, 2)
        assert is_low_overhead_code(12, 4)
        assert is_low_overhead_code(10, 4)  # Facebook HDFS-RAID


class TestWorstCase:
    def test_timesteps(self):
        # (12,4): q=4 -> ceil(log2 4)*4 = 8.
        assert worst_case_cross_timesteps(12, 4) == 8
        # (6,2): q=4 -> 2*2 = 4.
        assert worst_case_cross_timesteps(6, 2) == 4

    def test_improvement_formula(self):
        # (12,4): 1 - 8/12 = 1/3.
        assert worst_case_improvement(12, 4) == pytest.approx(1 / 3)
        # (6,2): 1 - 4/6 = 1/3.
        assert worst_case_improvement(6, 2) == pytest.approx(1 / 3)

    def test_no_improvement_for_high_overhead(self):
        assert worst_case_improvement(4, 2) == 0.0
        assert worst_case_improvement(8, 4) == 0.0

    def test_traffic_equals_n(self):
        """§4.3.2: worst-case intermediates = (n/k)*k = n."""
        for n, k in [(6, 2), (8, 2), (12, 4)]:
            assert worst_case_traffic_blocks(n, k) == n


class TestNonWorstCase:
    def test_timesteps(self):
        # (8,4): q=3 -> ceil(log2 3)=2 -> 2*l.
        assert nonworst_cross_timesteps(8, 4, 2) == 4
        assert nonworst_cross_timesteps(8, 4, 3) == 6

    def test_traffic(self):
        assert nonworst_traffic_blocks(8, 4, 2) == 4
        assert nonworst_traffic_blocks(12, 4, 3) == 9
        assert nonworst_traffic_blocks(6, 3, 2) == 4

    def test_invalid_l(self):
        with pytest.raises(ValueError):
            nonworst_cross_timesteps(8, 4, 0)
        with pytest.raises(ValueError):
            nonworst_traffic_blocks(8, 4, 5)


class TestSimulatorCrossChecks:
    """The analytical formulas against measured simulator outcomes."""

    @pytest.mark.parametrize("n,k,l", [(6, 3, 2), (8, 4, 2), (8, 4, 3), (12, 4, 2)])
    def test_nonworst_traffic_matches_formula(self, n, k, l):
        """Same-rack failures (the §4.3.3 setting) ship (n/k)*l blocks."""
        env = build_simics_environment(n, k)
        outcome = run_scheme(env, RPRScheme(), list(range(l)))
        assert outcome.cross_rack_blocks == pytest.approx(
            nonworst_traffic_blocks(n, k, l)
        )

    @pytest.mark.parametrize("n,k", [(6, 2), (8, 2), (12, 4)])
    def test_worst_case_traffic_matches_formula(self, n, k):
        env = build_simics_environment(n, k)
        outcome = run_scheme(env, RPRScheme(), list(range(k)))
        assert outcome.cross_rack_blocks == pytest.approx(
            worst_case_traffic_blocks(n, k)
        )

    @pytest.mark.parametrize("n,k", [(6, 2), (8, 2), (12, 4)])
    def test_worst_case_timestep_bound(self, n, k):
        """The measured worst-case repair stays at or below the paper's
        un-pipelined k * ceil(log2 q) cross-timestep estimate (our
        Cross-multi overlaps sub-equations, so it can only be faster)."""
        env = build_simics_environment(n, k)
        outcome = run_scheme(env, RPRScheme(), list(range(k)))
        t_c = env.block_size / SIMICS_BANDWIDTH.cross
        t_i = env.block_size / SIMICS_BANDWIDTH.intra
        # Allow the inner stage and decode passes on top of the cross bound.
        bound = worst_case_cross_timesteps(n, k) * t_c + 2 * k * t_i + 5.0
        assert outcome.total_repair_time <= bound


class TestCARModel:
    """The closed-form CAR estimate against the simulator."""

    @pytest.mark.parametrize("n,k", [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)])
    def test_matches_simulator_exactly(self, n, k):
        from repro.analysis import TimeParameters, car_repair_time
        from repro.repair import CARRepair, rack_aware_helpers, simulate_repair
        from repro.experiments import context_for

        env = build_simics_environment(n, k)
        ctx = context_for(env, [1])
        outcome = simulate_repair(CARRepair(), ctx, env.bandwidth)

        helpers = rack_aware_helpers(ctx, prefer_xor=False)
        recovery_rack = ctx.rack_of_block(1)
        by_rack = {}
        for h in helpers:
            by_rack.setdefault(ctx.rack_of_block(h), []).append(h)
        local = len(by_rack.pop(recovery_rack, []))
        remote_sizes = [len(v) for v in by_rack.values()]
        params = TimeParameters(
            t_i=env.block_size / env.bandwidth.intra,
            t_c=env.block_size / env.bandwidth.cross,
        )
        predicted = car_repair_time(
            local,
            remote_sizes,
            params,
            decode_seconds=env.cost_model.time_with_build(env.block_size),
        )
        assert outcome.total_repair_time == pytest.approx(predicted, rel=1e-6)

    def test_validation(self):
        from repro.analysis import TimeParameters, car_repair_time

        with pytest.raises(ValueError):
            car_repair_time(-1, [2], TimeParameters())
        with pytest.raises(ValueError):
            car_repair_time(1, [0], TimeParameters())
