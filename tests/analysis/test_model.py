"""Tests for the §4.1 closed-form model."""

import pytest

from repro.analysis import (
    FIG6_PARAMS,
    TimeParameters,
    cross_transfer_time,
    figure6_series,
    inner_transfer_time,
    racks_for_code,
    rpr_worst_case_time,
    traditional_repair_time,
    traditional_total_time_eq5,
)


class TestTimeParameters:
    def test_defaults_are_paper_figure6(self):
        assert FIG6_PARAMS.t_i == pytest.approx(0.001)
        assert FIG6_PARAMS.t_c == pytest.approx(0.010)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            TimeParameters(t_i=0, t_c=1)
        with pytest.raises(ValueError):
            TimeParameters(t_i=1, t_c=-1)


class TestRacksForCode:
    @pytest.mark.parametrize(
        "n,k,q",
        [(4, 2, 3), (6, 2, 4), (8, 2, 5), (6, 3, 3), (8, 4, 3), (12, 4, 4), (10, 4, 4)],
    )
    def test_values(self, n, k, q):
        assert racks_for_code(n, k) == q

    def test_invalid(self):
        with pytest.raises(ValueError):
            racks_for_code(0, 2)
        with pytest.raises(ValueError):
            racks_for_code(4, 0)


class TestEquations:
    def test_eq10_linear_in_n(self):
        p = TimeParameters(t_i=1.0, t_c=10.0)
        assert traditional_repair_time(4, p) == pytest.approx(40.0)
        assert traditional_repair_time(12, p) == pytest.approx(120.0)

    def test_eq5_matches_paper_example(self):
        """§2.3: 4 transfers of 256 MB at 128 MB/s + decode at 1000 MB/s."""
        t = traditional_total_time_eq5(4, 256e6, 128e6, 1000e6)
        assert t == pytest.approx(4 * 2.0 + 0.256)

    def test_eq5_invalid(self):
        with pytest.raises(ValueError):
            traditional_total_time_eq5(0, 1, 1, 1)

    def test_eq11_log_of_max_rack(self):
        p = TimeParameters(t_i=1.0, t_c=10.0)
        assert inner_transfer_time([1], p) == pytest.approx(1.0)  # floor(log2 1)+1
        assert inner_transfer_time([2], p) == pytest.approx(2.0)
        assert inner_transfer_time([4], p) == pytest.approx(3.0)
        assert inner_transfer_time([2, 4, 3], p) == pytest.approx(3.0)

    def test_eq11_invalid(self):
        with pytest.raises(ValueError):
            inner_transfer_time([], FIG6_PARAMS)
        with pytest.raises(ValueError):
            inner_transfer_time([0], FIG6_PARAMS)

    def test_eq12_log_of_racks(self):
        p = TimeParameters(t_i=1.0, t_c=10.0)
        assert cross_transfer_time(1, p) == pytest.approx(10.0)
        assert cross_transfer_time(3, p) == pytest.approx(20.0)
        assert cross_transfer_time(4, p) == pytest.approx(30.0)

    def test_eq13_combines_inner_and_cross(self):
        """RS(6,2): k=2 -> 2 t_i; q=4 -> 3 t_c."""
        p = TimeParameters(t_i=1.0, t_c=10.0)
        assert rpr_worst_case_time(6, 2, p) == pytest.approx(2.0 + 30.0)


class TestFigure6:
    def test_default_codes(self):
        rows = figure6_series()
        assert [r["code"] for r in rows] == [
            "(4,2)",
            "(6,2)",
            "(8,2)",
            "(6,3)",
            "(8,4)",
            "(12,4)",
        ]

    def test_traditional_grows_linearly_rpr_logarithmically(self):
        """The figure's visual claim: Tra scales with n, RPR barely moves."""
        codes = [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)]
        rows = figure6_series(codes)
        tra = [r["traditional_s"] for r in rows]
        rpr = [r["rpr_s"] for r in rows]
        for (n, _k), t in zip(codes, tra):
            assert t == pytest.approx(n * 0.010)  # strictly linear in n
        assert max(rpr) < min(tra)  # RPR below traditional everywhere
        assert max(rpr) / min(rpr) < 2  # flat-ish
        assert tra[-1] / tra[0] == pytest.approx(3.0)  # 12/4: linear in n

    def test_values_in_ms(self):
        rows = figure6_series()
        assert rows[0]["traditional_s"] == pytest.approx(0.040)  # 4 * 10 ms
        assert rows[0]["rpr_s"] == pytest.approx(0.002 + 0.020)  # (4,2)
