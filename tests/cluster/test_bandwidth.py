"""Tests for bandwidth models."""

import pytest

from repro.cluster import (
    SIMICS_BANDWIDTH,
    Cluster,
    HierarchicalBandwidth,
    MatrixBandwidth,
    gbps,
    mbps,
)


class TestUnits:
    def test_gbps(self):
        assert gbps(1) == 125e6

    def test_mbps(self):
        assert mbps(8) == 1e6


class TestHierarchical:
    def test_rates_by_rack_relationship(self):
        c = Cluster.homogeneous(2, 2)
        bw = HierarchicalBandwidth(intra=100.0, cross=10.0)
        assert bw.rate(c, 0, 1) == 100.0
        assert bw.rate(c, 0, 2) == 10.0

    def test_self_transfer_rejected(self):
        c = Cluster.homogeneous(2, 2)
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=10, cross=1).rate(c, 0, 0)

    def test_ratio(self):
        c = Cluster.homogeneous(2, 2)
        assert HierarchicalBandwidth(intra=100, cross=10).intra_cross_ratio(c) == 10

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=0, cross=1)
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=1, cross=-1)

    def test_cross_exceeding_intra_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=1, cross=2)

    def test_simics_constants(self):
        """§5.1: 1 Gb/s intra, 0.1 Gb/s cross, ratio 10."""
        c = Cluster.homogeneous(2, 2)
        assert SIMICS_BANDWIDTH.rate(c, 0, 1) == gbps(1)
        assert SIMICS_BANDWIDTH.rate(c, 0, 2) == gbps(0.1)
        assert SIMICS_BANDWIDTH.intra_cross_ratio(c) == pytest.approx(10.0)


class TestMatrix:
    def make(self):
        return MatrixBandwidth(
            pair_rate={
                (0, 0): 100.0,
                (1, 1): 90.0,
                (0, 1): 10.0,
            }
        )

    def test_rates(self):
        c = Cluster.homogeneous(2, 2)
        bw = self.make()
        assert bw.rate(c, 0, 1) == 100.0
        assert bw.rate(c, 2, 3) == 90.0
        assert bw.rate(c, 0, 3) == 10.0
        assert bw.rate(c, 3, 0) == 10.0  # symmetric by construction

    def test_missing_pair(self):
        c = Cluster.homogeneous(3, 1)
        with pytest.raises(KeyError):
            self.make().rate(c, 0, 2)

    def test_unsorted_pair_rejected(self):
        with pytest.raises(ValueError):
            MatrixBandwidth(pair_rate={(1, 0): 5.0})

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            MatrixBandwidth(pair_rate={(0, 0): 0.0})

    def test_ratio(self):
        c = Cluster.homogeneous(2, 2)
        assert self.make().intra_cross_ratio(c) == pytest.approx(95.0 / 10.0)

    def test_ratio_requires_both_kinds(self):
        c = Cluster.homogeneous(2, 2)
        with pytest.raises(ValueError):
            MatrixBandwidth(pair_rate={(0, 0): 1.0}).intra_cross_ratio(c)

    def test_self_transfer_rejected(self):
        c = Cluster.homogeneous(2, 2)
        with pytest.raises(ValueError):
            self.make().rate(c, 1, 1)
