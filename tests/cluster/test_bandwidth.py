"""Tests for bandwidth models."""

import pytest

from repro.cluster import (
    SIMICS_BANDWIDTH,
    Cluster,
    HierarchicalBandwidth,
    MatrixBandwidth,
    gbps,
    mbps,
)


class TestUnits:
    def test_gbps(self):
        assert gbps(1) == 125e6

    def test_mbps(self):
        assert mbps(8) == 1e6


class TestHierarchical:
    def test_rates_by_rack_relationship(self):
        c = Cluster.homogeneous(2, 2)
        bw = HierarchicalBandwidth(intra=100.0, cross=10.0)
        assert bw.rate(c, 0, 1) == 100.0
        assert bw.rate(c, 0, 2) == 10.0

    def test_self_transfer_rejected(self):
        c = Cluster.homogeneous(2, 2)
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=10, cross=1).rate(c, 0, 0)

    def test_ratio(self):
        c = Cluster.homogeneous(2, 2)
        assert HierarchicalBandwidth(intra=100, cross=10).intra_cross_ratio(c) == 10

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=0, cross=1)
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=1, cross=-1)

    def test_cross_exceeding_intra_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=1, cross=2)

    def test_simics_constants(self):
        """§5.1: 1 Gb/s intra, 0.1 Gb/s cross, ratio 10."""
        c = Cluster.homogeneous(2, 2)
        assert SIMICS_BANDWIDTH.rate(c, 0, 1) == gbps(1)
        assert SIMICS_BANDWIDTH.rate(c, 0, 2) == gbps(0.1)
        assert SIMICS_BANDWIDTH.intra_cross_ratio(c) == pytest.approx(10.0)


class TestMatrix:
    def make(self):
        return MatrixBandwidth(
            pair_rate={
                (0, 0): 100.0,
                (1, 1): 90.0,
                (0, 1): 10.0,
            }
        )

    def test_rates(self):
        c = Cluster.homogeneous(2, 2)
        bw = self.make()
        assert bw.rate(c, 0, 1) == 100.0
        assert bw.rate(c, 2, 3) == 90.0
        assert bw.rate(c, 0, 3) == 10.0
        assert bw.rate(c, 3, 0) == 10.0  # symmetric by construction

    def test_missing_pair(self):
        c = Cluster.homogeneous(3, 1)
        with pytest.raises(KeyError):
            self.make().rate(c, 0, 2)

    def test_unsorted_pair_rejected(self):
        with pytest.raises(ValueError):
            MatrixBandwidth(pair_rate={(1, 0): 5.0})

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError):
            MatrixBandwidth(pair_rate={(0, 0): 0.0})

    def test_ratio(self):
        c = Cluster.homogeneous(2, 2)
        assert self.make().intra_cross_ratio(c) == pytest.approx(95.0 / 10.0)

    def test_ratio_requires_both_kinds(self):
        c = Cluster.homogeneous(2, 2)
        with pytest.raises(ValueError):
            MatrixBandwidth(pair_rate={(0, 0): 1.0}).intra_cross_ratio(c)

    def test_self_transfer_rejected(self):
        c = Cluster.homogeneous(2, 2)
        with pytest.raises(ValueError):
            self.make().rate(c, 1, 1)


class TestHierarchicalLatency:
    def test_default_latency_is_zero(self):
        c = Cluster.homogeneous(2, 2)
        bw = HierarchicalBandwidth(intra=100.0, cross=10.0)
        assert bw.latency(c, 0, 1) == 0.0
        assert bw.latency(c, 0, 2) == 0.0

    def test_latency_by_rack_relationship(self):
        c = Cluster.homogeneous(2, 2)
        bw = HierarchicalBandwidth(
            intra=100.0, cross=10.0, intra_latency=0.001, cross_latency=0.05
        )
        assert bw.latency(c, 0, 1) == 0.001
        assert bw.latency(c, 0, 2) == 0.05

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=10, cross=1, intra_latency=-0.1)
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=10, cross=1, cross_latency=-0.1)

    def test_self_transfer_latency_rejected(self):
        c = Cluster.homogeneous(2, 2)
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=10, cross=1).latency(c, 2, 2)


class TestMatrixAsymmetricPairs:
    def make_three_racks(self):
        """Three racks, every rack pair at a different rate — the EC2
        shape, where Table 1 gives each region pair its own bandwidth."""
        return MatrixBandwidth(
            pair_rate={
                (0, 0): 100.0,
                (1, 1): 90.0,
                (2, 2): 80.0,
                (0, 1): 10.0,
                (0, 2): 4.0,
                (1, 2): 2.0,
            }
        )

    def test_each_rack_pair_has_its_own_rate(self):
        c = Cluster.homogeneous(3, 2)
        bw = self.make_three_racks()
        assert bw.rate(c, 0, 2) == 10.0  # racks 0-1
        assert bw.rate(c, 0, 4) == 4.0   # racks 0-2
        assert bw.rate(c, 2, 4) == 2.0   # racks 1-2
        # Direction never matters: pairs are unordered.
        assert bw.rate(c, 4, 0) == bw.rate(c, 0, 4)

    def test_per_rack_intra_rates_differ(self):
        c = Cluster.homogeneous(3, 2)
        bw = self.make_three_racks()
        assert bw.rate(c, 0, 1) == 100.0
        assert bw.rate(c, 2, 3) == 90.0
        assert bw.rate(c, 4, 5) == 80.0


class TestMatrixLatency:
    def make(self):
        return MatrixBandwidth(
            pair_rate={(0, 0): 100.0, (1, 1): 90.0, (0, 1): 10.0},
            pair_latency={(0, 1): 0.08},
        )

    def test_latency_lookup(self):
        c = Cluster.homogeneous(2, 2)
        bw = self.make()
        assert bw.latency(c, 0, 2) == 0.08
        assert bw.latency(c, 2, 0) == 0.08  # unordered pairs

    def test_absent_pairs_default_to_zero(self):
        c = Cluster.homogeneous(2, 2)
        assert self.make().latency(c, 0, 1) == 0.0

    def test_no_latency_table_means_zero(self):
        c = Cluster.homogeneous(2, 2)
        bw = MatrixBandwidth(pair_rate={(0, 0): 1.0, (0, 1): 1.0, (1, 1): 1.0})
        assert bw.latency(c, 0, 2) == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            MatrixBandwidth(
                pair_rate={(0, 1): 1.0}, pair_latency={(0, 1): -0.5}
            )

    def test_unsorted_latency_pair_rejected(self):
        with pytest.raises(ValueError):
            MatrixBandwidth(
                pair_rate={(0, 1): 1.0}, pair_latency={(1, 0): 0.5}
            )

    def test_self_transfer_latency_rejected(self):
        c = Cluster.homogeneous(2, 2)
        with pytest.raises(ValueError):
            self.make().latency(c, 0, 0)


class TestMatrixRatioEdgeCases:
    def test_single_intra_single_cross(self):
        c = Cluster.homogeneous(2, 1)
        bw = MatrixBandwidth(pair_rate={(0, 0): 50.0, (0, 1): 5.0})
        assert bw.intra_cross_ratio(c) == pytest.approx(10.0)

    def test_cross_only_rejected(self):
        c = Cluster.homogeneous(2, 1)
        with pytest.raises(ValueError):
            MatrixBandwidth(pair_rate={(0, 1): 5.0}).intra_cross_ratio(c)

    def test_ratio_below_one_is_allowed(self):
        # MatrixBandwidth (unlike HierarchicalBandwidth) permits cross
        # links faster than intra ones — EC2 region pairs can beat a
        # congested local rack — so the ratio may drop below 1.
        c = Cluster.homogeneous(2, 2)
        bw = MatrixBandwidth(
            pair_rate={(0, 0): 5.0, (1, 1): 5.0, (0, 1): 50.0}
        )
        assert bw.intra_cross_ratio(c) == pytest.approx(0.1)

    def test_ratio_averages_over_pairs(self):
        c = Cluster.homogeneous(3, 1)
        bw = MatrixBandwidth(
            pair_rate={
                (0, 0): 100.0,
                (1, 1): 50.0,
                (2, 2): 30.0,
                (0, 1): 10.0,
                (0, 2): 20.0,
                (1, 2): 30.0,
            }
        )
        assert bw.intra_cross_ratio(c) == pytest.approx(60.0 / 20.0)
