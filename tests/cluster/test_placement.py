"""Tests for stripe placement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    Cluster,
    ContiguousPlacement,
    FlatPlacement,
    Placement,
    PlacementError,
    RPRPlacement,
)
from repro.rs import PAPER_SINGLE_FAILURE_CODES


def cluster_for(n, k, spares=2):
    """Cluster big enough for a contiguous placement with spare nodes."""
    per_rack = max(k, 1)
    racks = -(-(n + k) // per_rack) + 1  # one extra rack
    return Cluster.homogeneous(racks, per_rack + spares)


class TestPlacementObject:
    def test_coverage_required(self):
        with pytest.raises(PlacementError):
            Placement(n=2, k=1, block_to_node={0: 0, 1: 1})

    def test_distinct_nodes_required(self):
        with pytest.raises(PlacementError):
            Placement(n=2, k=0, block_to_node={0: 0, 1: 0})

    def test_lookups(self):
        c = Cluster.homogeneous(3, 2)
        p = Placement(n=2, k=1, block_to_node={0: 0, 1: 2, 2: 4})
        assert p.node_of(1) == 2
        assert p.block_at(4) == 2
        assert p.block_at(1) is None
        assert p.rack_of_block(c, 2) == 2
        assert p.blocks_in_rack(c, 1) == [1]
        assert p.racks_used(c) == [0, 1, 2]

    def test_node_of_missing_block(self):
        p = Placement(n=1, k=0, block_to_node={0: 0})
        with pytest.raises(PlacementError):
            p.node_of(5)

    def test_spare_nodes(self):
        c = Cluster.homogeneous(2, 3)
        p = Placement(n=2, k=0, block_to_node={0: 0, 1: 3})
        assert p.spare_nodes_in_rack(c, 0) == [1, 2]
        assert p.spare_nodes_in_rack(c, 1) == [4, 5]


class TestFlatPlacement:
    def test_one_block_per_rack(self):
        c = Cluster.homogeneous(8, 2)
        p = FlatPlacement().place(c, 4, 2)
        hist = p.rack_histogram(c)
        assert all(v == 1 for v in hist.values())
        assert len(hist) == 6

    def test_insufficient_racks(self):
        c = Cluster.homogeneous(3, 2)
        with pytest.raises(PlacementError):
            FlatPlacement().place(c, 4, 2)


class TestContiguousPlacement:
    @pytest.mark.parametrize("n,k", PAPER_SINGLE_FAILURE_CODES)
    def test_at_most_k_per_rack(self, n, k):
        c = cluster_for(n, k)
        p = ContiguousPlacement().place(c, n, k)
        assert p.single_rack_fault_tolerant(c)

    def test_paper_fig3_layout(self):
        """(4,2) contiguous: r0={d0,d1}, r1={d2,d3}, r2={p0,p1}."""
        c = cluster_for(4, 2)
        p = ContiguousPlacement().place(c, 4, 2)
        assert p.blocks_in_rack(c, 0) == [0, 1]
        assert p.blocks_in_rack(c, 1) == [2, 3]
        assert p.blocks_in_rack(c, 2) == [4, 5]

    def test_explicit_per_rack(self):
        c = Cluster.homogeneous(6, 3)
        p = ContiguousPlacement(per_rack=1).place(c, 4, 2)
        assert all(v == 1 for v in p.rack_histogram(c).values())

    def test_per_rack_exceeding_k_rejected(self):
        c = Cluster.homogeneous(3, 8)
        with pytest.raises(PlacementError):
            ContiguousPlacement(per_rack=4).place(c, 4, 2)

    def test_invalid_per_rack(self):
        with pytest.raises(PlacementError):
            ContiguousPlacement(per_rack=0)

    def test_k_zero_needs_explicit_per_rack(self):
        c = Cluster.homogeneous(4, 4)
        with pytest.raises(PlacementError):
            ContiguousPlacement().place(c, 4, 0)
        p = ContiguousPlacement(per_rack=2).place(c, 4, 0)
        assert p.width == 4

    def test_insufficient_rack_capacity(self):
        c = Cluster.homogeneous(3, 1)
        with pytest.raises(PlacementError):
            ContiguousPlacement().place(c, 4, 2)


class TestRPRPlacement:
    @pytest.mark.parametrize("n,k", PAPER_SINGLE_FAILURE_CODES)
    def test_p0_rack_is_all_data(self, n, k):
        """The §3.3 property: P0 shares its rack only with data blocks."""
        c = cluster_for(n, k)
        p = RPRPlacement().place(c, n, k)
        p0_rack = p.rack_of_block(c, n)
        mates = [b for b in p.blocks_in_rack(c, p0_rack) if b != n]
        assert all(b < n for b in mates), mates

    @pytest.mark.parametrize("n,k", PAPER_SINGLE_FAILURE_CODES)
    def test_fault_tolerance_preserved(self, n, k):
        c = cluster_for(n, k)
        p = RPRPlacement().place(c, n, k)
        assert p.single_rack_fault_tolerant(c)

    @pytest.mark.parametrize("n,k", PAPER_SINGLE_FAILURE_CODES)
    def test_same_rack_histogram_as_contiguous(self, n, k):
        """§3.3: pre-placement changes no rack's load."""
        c = cluster_for(n, k)
        contiguous = ContiguousPlacement().place(c, n, k)
        rpr = RPRPlacement().place(c, n, k)
        assert rpr.rack_histogram(c) == contiguous.rack_histogram(c)

    def test_fig4_style_swap(self):
        """(4,2): P0 moves beside d2; d3 joins p1."""
        c = cluster_for(4, 2)
        p = RPRPlacement().place(c, 4, 2)
        assert p.blocks_in_rack(c, 0) == [0, 1]
        assert p.blocks_in_rack(c, 1) == [2, 4]  # d2, p0
        assert p.blocks_in_rack(c, 2) == [3, 5]  # d3, p1

    @given(st.integers(2, 12), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_placement_valid_for_arbitrary_codes(self, n, k):
        c = cluster_for(n, k)
        p = RPRPlacement().place(c, n, k)
        assert p.width == n + k
        assert p.single_rack_fault_tolerant(c)
