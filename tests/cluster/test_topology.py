"""Tests for the cluster topology model."""

import pytest

from repro.cluster import Cluster, Node, Rack


class TestNode:
    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            Node(node_id=-1, rack_id=0)
        with pytest.raises(ValueError):
            Node(node_id=0, rack_id=-1)

    def test_frozen(self):
        node = Node(node_id=0, rack_id=0)
        with pytest.raises(AttributeError):
            node.node_id = 5


class TestRack:
    def test_size(self):
        rack = Rack(rack_id=0, nodes=[Node(0, 0), Node(1, 0)])
        assert rack.size == 2
        assert rack.node_ids() == [0, 1]

    def test_rack_id_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Rack(rack_id=0, nodes=[Node(0, 1)])

    def test_negative_rack_id_rejected(self):
        with pytest.raises(ValueError):
            Rack(rack_id=-1)


class TestCluster:
    def test_homogeneous_shape(self):
        c = Cluster.homogeneous(3, 4)
        assert c.num_racks == 3
        assert c.num_nodes == 12
        assert c.rack_ids() == [0, 1, 2]
        assert c.node_ids() == list(range(12))

    def test_homogeneous_rack_major_ids(self):
        c = Cluster.homogeneous(3, 4)
        assert c.nodes_in_rack(0) == [0, 1, 2, 3]
        assert c.nodes_in_rack(2) == [8, 9, 10, 11]

    def test_rack_of(self):
        c = Cluster.homogeneous(3, 4)
        assert c.rack_of(0) == 0
        assert c.rack_of(5) == 1
        assert c.rack_of(11) == 2

    def test_same_rack(self):
        c = Cluster.homogeneous(2, 3)
        assert c.same_rack(0, 2)
        assert not c.same_rack(0, 3)

    def test_lookup_errors(self):
        c = Cluster.homogeneous(2, 2)
        with pytest.raises(KeyError):
            c.node(99)
        with pytest.raises(KeyError):
            c.rack(99)

    def test_duplicate_rack_rejected(self):
        with pytest.raises(ValueError):
            Cluster([Rack(0), Rack(0)])

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValueError):
            Cluster(
                [
                    Rack(0, nodes=[Node(0, 0)]),
                    Rack(1, nodes=[Node(0, 1)]),
                ]
            )

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_invalid_homogeneous_shape(self):
        with pytest.raises(ValueError):
            Cluster.homogeneous(0, 4)
        with pytest.raises(ValueError):
            Cluster.homogeneous(4, 0)

    def test_heterogeneous_rack_sizes(self):
        c = Cluster(
            [
                Rack(0, nodes=[Node(0, 0)]),
                Rack(1, nodes=[Node(1, 1), Node(2, 1), Node(3, 1)]),
            ]
        )
        assert c.rack(1).size == 3
        assert c.num_nodes == 4
