"""Tests for the EC2 geo-distributed testbed substitute."""

import numpy as np
import pytest

from repro.cluster import mbps
from repro.ec2 import (
    REGIONS,
    TABLE1_MBPS,
    average_cross_mbps,
    average_intra_mbps,
    build_ec2_environment,
    region_index,
    table1_bandwidth,
)
from repro.repair import (
    CARRepair,
    RepairContext,
    RPRScheme,
    TraditionalRepair,
    execute_plan,
    initial_store_for,
    simulate_repair,
)
from repro.workloads import encoded_stripe


class TestTable1:
    def test_five_regions(self):
        assert len(REGIONS) == 5
        assert len(TABLE1_MBPS) == 15  # 5 diagonal + C(5,2) off-diagonal

    def test_region_index(self):
        assert region_index("ohio") == 0
        assert region_index("sydney") == 4
        with pytest.raises(KeyError):
            region_index("mars")

    def test_paper_reported_averages(self):
        """§5.2: avg cross 53.03 Mbps, avg intra 600.97 Mbps, ratio ~11.3."""
        assert average_cross_mbps() == pytest.approx(53.03, abs=0.01)
        assert average_intra_mbps() == pytest.approx(600.97, abs=0.01)
        ratio = average_intra_mbps() / average_cross_mbps()
        assert ratio == pytest.approx(11.33, abs=0.01)

    def test_matrix_bandwidth_lookup(self):
        bw = table1_bandwidth()
        env = build_ec2_environment(4, 2)
        # nodes 0..: region 0 (ohio) holds node 0; region 1 (tokyo) node 4.
        node_ohio = env.cluster.nodes_in_rack(0)[0]
        node_tokyo = env.cluster.nodes_in_rack(1)[0]
        assert bw.rate(env.cluster, node_ohio, node_tokyo) == pytest.approx(
            mbps(51.798)
        )
        peer_ohio = env.cluster.nodes_in_rack(0)[1]
        assert bw.rate(env.cluster, node_ohio, peer_ohio) == pytest.approx(
            mbps(583.39)
        )

    def test_every_pair_covered(self):
        bw = table1_bandwidth()
        env = build_ec2_environment(4, 2)
        nodes = [env.cluster.nodes_in_rack(r)[0] for r in range(5)]
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                assert bw.rate(env.cluster, a, b) > 0


class TestEnvironment:
    def test_shapes(self):
        env = build_ec2_environment(8, 4)
        assert env.cluster.num_racks == 5
        assert env.placement.single_rack_fault_tolerant(env.cluster)
        assert env.block_size == 256_000_000

    def test_decode_model_is_t2micro(self):
        env = build_ec2_environment(4, 2)
        assert env.cost_model.time_without_build(256_000_000) == pytest.approx(2.5)
        assert env.cost_model.time_with_build(256_000_000) == pytest.approx(20.0)

    def test_too_wide_code_rejected(self):
        with pytest.raises(ValueError):
            build_ec2_environment(16, 2)  # needs 9 regions

    def test_contiguous_placement_option(self):
        env = build_ec2_environment(6, 2, placement="contiguous")
        # contiguous puts both parities in the last used region.
        parity_racks = {
            env.placement.rack_of_block(env.cluster, b) for b in [6, 7]
        }
        assert len(parity_racks) == 1


class TestEndToEnd:
    def test_all_schemes_repair_on_ec2(self):
        env = build_ec2_environment(6, 2, block_size=512)
        ctx = RepairContext(
            code=env.code,
            cluster=env.cluster,
            placement=env.placement,
            failed_blocks=(2,),
            block_size=512,
            cost_model=env.cost_model,
        )
        stripe = encoded_stripe(env.code, 512, seed=1)
        for scheme in [TraditionalRepair(), CARRepair(), RPRScheme()]:
            plan = scheme.plan(ctx)
            store = initial_store_for(stripe, env.placement, (2,))
            result = execute_plan(plan, env.cluster, store)
            np.testing.assert_array_equal(
                result.recovered[2], stripe.get_payload(2)
            )

    def test_decode_gap_widens_rpr_lead(self):
        """§5.2.1: the slow t2.micro matrix decode grows the CAR-RPR gap."""
        env = build_ec2_environment(12, 4)
        ctx = RepairContext(
            code=env.code,
            cluster=env.cluster,
            placement=env.placement,
            failed_blocks=(1,),
            block_size=env.block_size,
            cost_model=env.cost_model,
        )
        car = simulate_repair(CARRepair(), ctx, env.bandwidth)
        rpr = simulate_repair(RPRScheme(), ctx, env.bandwidth)
        # The gap includes the ~17.5 s decode difference.
        assert car.total_repair_time - rpr.total_repair_time > 17.0
