"""Unit and property tests for GF(2^8) element/array arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import (
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
    gf_sub,
    linear_combine,
    scale,
    scale_accumulate,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)
blocks = st.lists(elements, min_size=1, max_size=64).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestAdd:
    def test_add_is_xor(self):
        assert gf_add(0b1010, 0b0110) == 0b1100

    def test_sub_is_add(self):
        assert gf_sub is gf_add

    @given(elements, elements)
    def test_commutative(self, a, b):
        assert gf_add(a, b) == gf_add(b, a)

    @given(elements)
    def test_self_inverse(self, a):
        assert gf_add(a, a) == 0

    @given(elements)
    def test_zero_identity(self, a):
        assert gf_add(a, 0) == a

    def test_vectorised(self):
        a = np.array([1, 2, 3], dtype=np.uint8)
        b = np.array([3, 2, 1], dtype=np.uint8)
        np.testing.assert_array_equal(gf_add(a, b), np.array([2, 0, 2], dtype=np.uint8))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            gf_add(300, 1)


class TestMul:
    def test_known_products(self):
        # 2 * 2 = x * x = x^2 = 4; 0x80 * 2 = x^8 = 0x11D ^ 0x100 = 0x1D.
        assert gf_mul(2, 2) == 4
        assert gf_mul(0x80, 2) == 0x1D

    @given(elements, elements)
    def test_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        lhs = gf_mul(a, gf_add(b, c))
        rhs = gf_add(gf_mul(a, b), gf_mul(a, c))
        assert lhs == rhs

    @given(elements)
    def test_one_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero, nonzero)
    def test_no_zero_divisors(self, a, b):
        assert gf_mul(a, b) != 0


class TestInvDiv:
    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    @given(elements, nonzero)
    def test_div_mul_roundtrip(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    @given(nonzero)
    def test_self_division(self, a):
        assert gf_div(a, a) == 1


class TestPow:
    @given(elements)
    def test_pow_zero_is_one(self, a):
        assert gf_pow(a, 0) == 1

    @given(elements)
    def test_pow_one_identity(self, a):
        assert gf_pow(a, 1) == a

    @given(nonzero, st.integers(min_value=0, max_value=20))
    def test_pow_matches_repeated_mul(self, a, e):
        expected = 1
        for _ in range(e):
            expected = int(gf_mul(expected, a))
        assert gf_pow(a, e) == expected

    @given(nonzero)
    def test_fermat(self, a):
        assert gf_pow(a, 255) == 1

    def test_zero_powers(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            gf_pow(3, -1)


class TestScale:
    @given(blocks, elements)
    @settings(max_examples=50)
    def test_matches_elementwise_mul(self, block, c):
        np.testing.assert_array_equal(scale(c, block), gf_mul(c, block))

    def test_zero_coefficient_zeroes(self):
        block = np.array([5, 6, 7], dtype=np.uint8)
        assert np.all(scale(0, block) == 0)

    def test_one_coefficient_copies(self):
        block = np.array([5, 6, 7], dtype=np.uint8)
        out = scale(1, block)
        np.testing.assert_array_equal(out, block)
        assert out is not block

    def test_rejects_bad_coefficient(self):
        with pytest.raises(ValueError):
            scale(256, np.zeros(4, dtype=np.uint8))


class TestScaleAccumulate:
    @given(blocks, elements, elements)
    @settings(max_examples=50)
    def test_matches_scale_then_xor(self, block, c, seed):
        acc = np.full_like(block, seed)
        expected = np.bitwise_xor(acc, scale(c, block))
        result = scale_accumulate(acc, c, block)
        assert result is acc
        np.testing.assert_array_equal(acc, expected)

    def test_requires_writable_uint8(self):
        acc = np.zeros(4, dtype=np.uint16)
        with pytest.raises(ValueError):
            scale_accumulate(acc, 1, np.zeros(4, dtype=np.uint8))

    def test_requires_matching_shape(self):
        with pytest.raises(ValueError):
            scale_accumulate(
                np.zeros(4, dtype=np.uint8), 1, np.zeros(5, dtype=np.uint8)
            )


class TestLinearCombine:
    def test_single_term(self):
        b = np.array([1, 2, 3], dtype=np.uint8)
        np.testing.assert_array_equal(linear_combine([3], [b]), scale(3, b))

    def test_xor_of_all_ones_coeffs(self):
        bs = [np.array([i, i + 1], dtype=np.uint8) for i in range(4)]
        expected = bs[0] ^ bs[1] ^ bs[2] ^ bs[3]
        np.testing.assert_array_equal(linear_combine([1, 1, 1, 1], bs), expected)

    @given(
        st.lists(st.tuples(elements, st.integers(0, 255)), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50)
    def test_matches_reference(self, pairs, length):
        rng = np.random.default_rng(42)
        coeffs = [p[0] for p in pairs]
        bs = [rng.integers(0, 256, length, dtype=np.uint8) for _ in pairs]
        expected = np.zeros(length, dtype=np.uint8)
        for c, b in zip(coeffs, bs):
            expected ^= scale(c, b)
        np.testing.assert_array_equal(linear_combine(coeffs, bs), expected)

    def test_out_buffer_reused(self):
        b = np.array([9, 9], dtype=np.uint8)
        out = np.array([1, 1], dtype=np.uint8)
        result = linear_combine([1], [b], out=out)
        assert result is out
        np.testing.assert_array_equal(out, b)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            linear_combine([1, 2], [np.zeros(2, dtype=np.uint8)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            linear_combine([], [])
