"""Unit tests for the batched matmul kernel and the scratch buffer pool."""

import numpy as np
import pytest

from repro.gf import BufferPool, gf_matmul_blocks, scale
from repro.gf.arithmetic import _gather_into
from repro.gf.tables import get_tables


class TestGfMatmulBlocks:
    def test_identity_matrix_copies_blocks(self):
        rng = np.random.default_rng(0)
        blocks = [rng.integers(0, 256, 50, dtype=np.uint8) for _ in range(3)]
        got = gf_matmul_blocks(np.eye(3, dtype=np.uint8), blocks)
        for i in range(3):
            assert np.array_equal(got[i], blocks[i])
        # Outputs are fresh arrays, not aliases of the inputs.
        got[0][0] ^= 0xFF
        assert got[0][0] != blocks[0][0]

    def test_all_zero_row_yields_zeros(self):
        blocks = [np.full(10, 7, dtype=np.uint8)]
        got = gf_matmul_blocks(np.array([[0]], dtype=np.uint8), blocks)
        assert not got.any()

    def test_stacked_ndarray_input(self):
        rng = np.random.default_rng(1)
        stack = rng.integers(0, 256, (4, 6, 33), dtype=np.uint8)
        m = rng.integers(0, 256, (2, 4), dtype=np.uint8)
        from_stack = gf_matmul_blocks(m, stack)
        from_list = gf_matmul_blocks(m, [stack[j] for j in range(4)])
        assert np.array_equal(from_stack, from_list)

    def test_strided_block_views_match_contiguous(self):
        """Stripe-major slices (non-contiguous) must give identical bytes."""
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, (5, 3, 40), dtype=np.uint8)
        m = np.array([[1, 2, 3], [0, 1, 0]], dtype=np.uint8)
        strided = gf_matmul_blocks(m, [data[:, j, :] for j in range(3)])
        contiguous = gf_matmul_blocks(
            m, [np.ascontiguousarray(data[:, j, :]) for j in range(3)]
        )
        assert np.array_equal(strided, contiguous)

    def test_out_buffer_reused(self):
        rng = np.random.default_rng(3)
        blocks = [rng.integers(0, 256, 64, dtype=np.uint8) for _ in range(2)]
        out = np.empty((2, 64), dtype=np.uint8)
        got = gf_matmul_blocks(np.eye(2, dtype=np.uint8), blocks, out=out)
        assert got is out

    def test_out_buffer_validated(self):
        blocks = [np.zeros(8, dtype=np.uint8)]
        with pytest.raises(ValueError, match="out buffer"):
            gf_matmul_blocks(
                np.array([[1]], dtype=np.uint8),
                blocks,
                out=np.empty((2, 8), dtype=np.uint8),
            )
        with pytest.raises(ValueError, match="out buffer"):
            gf_matmul_blocks(
                np.array([[1]], dtype=np.uint8),
                blocks,
                out=np.empty((1, 8), dtype=np.uint16),
            )

    def test_shape_mismatches_rejected(self):
        with pytest.raises(ValueError, match="matrix must be 2-D"):
            gf_matmul_blocks(np.zeros(3, dtype=np.uint8), [np.zeros(4, np.uint8)])
        with pytest.raises(ValueError, match="incompatible"):
            gf_matmul_blocks(
                np.zeros((2, 3), dtype=np.uint8), [np.zeros(4, np.uint8)]
            )
        with pytest.raises(ValueError, match="share one shape"):
            gf_matmul_blocks(
                np.zeros((1, 2), dtype=np.uint8),
                [np.zeros(4, np.uint8), np.zeros(5, np.uint8)],
            )
        with pytest.raises(ValueError, match="at least one block"):
            gf_matmul_blocks(np.zeros((1, 0), dtype=np.uint8), [])

    def test_spans_multiple_tiles(self):
        """Inputs larger than one cache tile must still be exact."""
        from repro.gf.batch import adaptive_tile

        rng = np.random.default_rng(4)
        size = adaptive_tile(2, 1, 1 << 62) * 2 + 777
        blocks = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(2)]
        m = np.array([[37, 91]], dtype=np.uint8)
        got = gf_matmul_blocks(m, blocks)
        expect = scale(37, blocks[0]) ^ scale(91, blocks[1])
        assert np.array_equal(got[0], expect)


class TestGatherInto:
    def test_matches_table_row_lookup(self):
        t = get_tables()
        rng = np.random.default_rng(5)
        src = rng.integers(0, 256, 200_000, dtype=np.uint8)
        out = np.empty_like(src)
        _gather_into(t.mul_table[91], src, out)
        assert np.array_equal(out, t.mul_table[91][src.astype(np.intp)])


class TestBufferPool:
    def test_take_then_give_reuses(self):
        pool = BufferPool()
        a = pool.take(64)
        pool.give(a)
        b = pool.take(64)
        assert b is a
        assert pool.stats()["hits"] == 1
        assert pool.stats()["misses"] == 1

    def test_distinct_sizes_do_not_mix(self):
        pool = BufferPool()
        a = pool.take(64)
        pool.give(a)
        b = pool.take(65)
        assert b is not a
        assert b.shape == (65,)

    def test_retention_bounded(self):
        pool = BufferPool(max_per_size=2)
        bufs = [pool.take(16) for _ in range(4)]
        for b in bufs:
            pool.give(b)
        assert pool.stats()["retained_bytes"] == 32

    def test_clear_drops_buffers(self):
        pool = BufferPool()
        pool.give(pool.take(128))
        pool.clear()
        assert pool.stats()["retained_bytes"] == 0

    def test_invalid_inputs_rejected(self):
        pool = BufferPool()
        with pytest.raises(ValueError):
            pool.take(0)
        with pytest.raises(ValueError):
            pool.give(np.zeros((2, 2), dtype=np.uint8))
        with pytest.raises(ValueError):
            pool.give(np.zeros(4, dtype=np.uint16))
        with pytest.raises(ValueError):
            BufferPool(max_per_size=0)
