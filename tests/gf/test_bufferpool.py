"""BufferPool retention must respect its configured high-water mark."""

import threading

import numpy as np
import pytest

from repro.gf import DEFAULT_POOL_MAX_BYTES
from repro.gf.bufferpool import BufferPool


class TestHighWaterMark:
    def test_default_cap_is_set(self):
        pool = BufferPool()
        assert pool.max_bytes == DEFAULT_POOL_MAX_BYTES

    def test_retention_never_exceeds_cap_under_size_churn(self):
        """The regression the cap exists for: a workload cycling through
        many distinct block sizes must not accumulate one free-list per
        size forever."""
        cap = 64 * 1024
        pool = BufferPool(max_per_size=4, max_bytes=cap)
        rng = np.random.default_rng(0)
        for _ in range(300):
            size = int(rng.integers(1, cap))
            buf = pool.take(size)
            pool.give(buf)
            assert pool.retained_bytes <= cap
        assert pool.evictions > 0

    def test_eviction_drops_largest_sizes_first(self):
        pool = BufferPool(max_per_size=4, max_bytes=100)
        small = pool.take(10)
        big = pool.take(80)
        pool.give(small)
        pool.give(big)
        assert pool.retained_bytes == 90
        # Returning another 80 would exceed the cap: the idle 80 goes
        # before the idle 10 does.
        pool.give(pool.take(80))
        assert pool.retained_bytes == 90
        pool.give(pool.take(15))
        assert pool.retained_bytes <= 100
        assert pool._free.get(10) is not None or pool.retained_bytes < 90

    def test_oversized_buffer_is_not_retained(self):
        pool = BufferPool(max_bytes=100)
        pool.give(pool.take(500))
        assert pool.retained_bytes == 0

    def test_uncapped_pool_still_honours_per_size_limit(self):
        pool = BufferPool(max_per_size=2, max_bytes=None)
        bufs = [pool.take(64) for _ in range(5)]
        for buf in bufs:
            pool.give(buf)
        assert pool.retained_bytes == 128

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferPool(max_bytes=0)

    def test_stats_reports_cap_and_evictions(self):
        pool = BufferPool(max_bytes=32)
        first, second = pool.take(20), pool.take(20)
        pool.give(first)
        pool.give(second)
        stats = pool.stats()
        assert stats["max_bytes"] == 32
        assert stats["retained_bytes"] <= 32
        assert stats["evictions"] >= 1

    def test_concurrent_take_give_keeps_accounting_exact(self):
        """The parallel codec's worker threads share one pool."""
        cap = 256 * 1024
        pool = BufferPool(max_per_size=4, max_bytes=cap)
        errors = []

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(200):
                    size = int(rng.integers(1, 16 * 1024))
                    buf = pool.take(size)
                    pool.give(buf)
                    if pool.retained_bytes > cap:
                        errors.append(pool.retained_bytes)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Retention accounting must match the free lists exactly.
        expected = sum(
            size * len(stack) for size, stack in pool._free.items()
        )
        assert pool.retained_bytes == expected <= cap
