"""Tests for the Cauchy generator construction."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import (
    cauchy_coding_matrix,
    mat_identity,
    mat_inv,
    systematic_cauchy_generator,
)
from repro.rs import RSCode

PAPER_CODES = [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)]


class TestCauchyMatrix:
    def test_shape(self):
        assert cauchy_coding_matrix(6, 3).shape == (3, 6)

    def test_no_zero_entries(self):
        m = cauchy_coding_matrix(12, 4)
        assert np.all(m != 0)

    def test_entries_match_definition(self):
        from repro.gf import gf_add, gf_inv

        m = cauchy_coding_matrix(4, 2)
        for i in range(2):
            for j in range(4):
                assert m[i, j] == gf_inv(gf_add(i, 2 + j))

    @pytest.mark.parametrize("n,k", PAPER_CODES)
    def test_every_square_submatrix_nonsingular(self, n, k):
        """The defining Cauchy property, checked exhaustively for size k."""
        m = cauchy_coding_matrix(n, k)
        for cols in itertools.combinations(range(n), k):
            mat_inv(m[:, list(cols)])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cauchy_coding_matrix(0, 2)
        with pytest.raises(ValueError):
            cauchy_coding_matrix(250, 10)


class TestSystematicCauchy:
    @pytest.mark.parametrize("n,k", PAPER_CODES)
    def test_top_identity_and_xor_row(self, n, k):
        g = systematic_cauchy_generator(n, k)
        np.testing.assert_array_equal(g[:n], mat_identity(n))
        assert np.all(g[n] == 1)

    @pytest.mark.parametrize("n,k", PAPER_CODES)
    def test_mds_exhaustive(self, n, k):
        g = systematic_cauchy_generator(n, k)
        for rows in itertools.combinations(range(n + k), n):
            mat_inv(g[list(rows)])

    def test_k_zero(self):
        np.testing.assert_array_equal(
            systematic_cauchy_generator(5, 0), mat_identity(5)
        )

    @given(st.integers(1, 30), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_shapes_construct(self, n, k):
        g = systematic_cauchy_generator(n, k)
        assert g.shape == (n + k, n)
        assert np.all(g[n] == 1)


class TestCauchyRSCode:
    def test_code_constructs(self):
        code = RSCode(6, 3, matrix="cauchy")
        assert code.matrix_type == "cauchy"

    def test_p0_is_xor(self):
        rng = np.random.default_rng(0)
        code = RSCode(6, 3, matrix="cauchy")
        data = [rng.integers(0, 256, 32, dtype=np.uint8) for _ in range(6)]
        blocks = code.encode(data)
        expected = data[0].copy()
        for d in data[1:]:
            expected ^= d
        np.testing.assert_array_equal(blocks[6], expected)

    def test_roundtrip_with_erasures(self):
        from repro.rs import decode_blocks

        rng = np.random.default_rng(1)
        code = RSCode(8, 4, matrix="cauchy")
        data = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(8)]
        blocks = {i: b for i, b in enumerate(code.encode(data))}
        failed = [0, 3, 9, 11]
        available = {i: b for i, b in blocks.items() if i not in failed}
        recovered = decode_blocks(code, available, failed)
        for f in failed:
            np.testing.assert_array_equal(recovered[f], blocks[f])

    def test_repair_schemes_work_with_cauchy(self):
        """The whole repair stack is construction-agnostic."""
        from repro.cluster import Cluster, RPRPlacement
        from repro.repair import (
            RepairContext,
            RPRScheme,
            execute_plan,
            initial_store_for,
        )
        from repro.rs import MB, DecodeCostModel

        code = RSCode(6, 2, matrix="cauchy")
        cluster = Cluster.homogeneous(5, 4)
        placement = RPRPlacement().place(cluster, 6, 2)
        ctx = RepairContext(
            code=code,
            cluster=cluster,
            placement=placement,
            failed_blocks=(1,),
            block_size=64,
            cost_model=DecodeCostModel(xor_speed=MB),
        )
        rng = np.random.default_rng(2)
        data = [rng.integers(0, 256, 64, dtype=np.uint8) for _ in range(6)]
        stripe = code.encode_stripe(data)
        plan = RPRScheme().plan(ctx)
        store = initial_store_for(stripe, placement, (1,))
        result = execute_plan(plan, cluster, store)
        np.testing.assert_array_equal(result.recovered[1], stripe.get_payload(1))

    def test_unknown_matrix_rejected(self):
        with pytest.raises(ValueError):
            RSCode(4, 2, matrix="fourier")

    def test_equality_distinguishes_constructions(self):
        assert RSCode(4, 2) != RSCode(4, 2, matrix="cauchy")
