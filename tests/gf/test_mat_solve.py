"""Tests for the general GF(256) linear solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import mat_identity, mat_mul, mat_solve


class TestMatSolve:
    def test_identity_system(self):
        b = np.array([5, 7, 9], dtype=np.uint8)
        x = mat_solve(mat_identity(3), b)
        np.testing.assert_array_equal(x, b)

    def test_unique_solution(self):
        a = np.array([[1, 1], [0, 1]], dtype=np.uint8)
        b = np.array([3, 2], dtype=np.uint8)
        x = mat_solve(a, b)
        np.testing.assert_array_equal(mat_mul(a, x.reshape(-1, 1)).ravel(), b)

    def test_underdetermined_prefers_early_columns(self):
        """Free variables are zeroed, so the solution concentrates on the
        leading columns — the property the LRC decoder leans on."""
        a = np.array([[1, 0, 1, 1]], dtype=np.uint8)
        b = np.array([9], dtype=np.uint8)
        x = mat_solve(a, b)
        np.testing.assert_array_equal(x, np.array([9, 0, 0, 0], dtype=np.uint8))

    def test_inconsistent_returns_none(self):
        a = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        b = np.array([1, 2], dtype=np.uint8)
        assert mat_solve(a, b) is None

    def test_zero_matrix_zero_rhs(self):
        a = np.zeros((2, 3), dtype=np.uint8)
        x = mat_solve(a, np.zeros(2, dtype=np.uint8))
        np.testing.assert_array_equal(x, np.zeros(3, dtype=np.uint8))

    def test_zero_matrix_nonzero_rhs(self):
        a = np.zeros((2, 3), dtype=np.uint8)
        assert mat_solve(a, np.array([1, 0], dtype=np.uint8)) is None

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            mat_solve(np.zeros((2, 2), dtype=np.uint8), np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError):
            mat_solve(np.zeros(4, dtype=np.uint8), np.zeros(4, dtype=np.uint8))

    def test_input_not_mutated(self):
        a = np.array([[2, 3], [1, 1]], dtype=np.uint8)
        b = np.array([5, 6], dtype=np.uint8)
        a0, b0 = a.copy(), b.copy()
        mat_solve(a, b)
        np.testing.assert_array_equal(a, a0)
        np.testing.assert_array_equal(b, b0)

    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 8),
        st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_constructed_systems_always_solved(self, seed, rows, cols):
        """Any b = A x_true is solvable and the returned x satisfies it
        (not necessarily x_true when A is rank-deficient)."""
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, (rows, cols), dtype=np.uint8)
        x_true = rng.integers(0, 256, cols, dtype=np.uint8)
        b = mat_mul(a, x_true.reshape(-1, 1)).ravel()
        x = mat_solve(a, b)
        assert x is not None
        np.testing.assert_array_equal(mat_mul(a, x.reshape(-1, 1)).ravel(), b)

    @given(st.integers(0, 2**31 - 1), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_mat_inv_on_square_invertible(self, seed, size):
        from repro.gf import SingularMatrixError, mat_inv

        rng = np.random.default_rng(seed)
        while True:
            a = rng.integers(0, 256, (size, size), dtype=np.uint8)
            try:
                inv = mat_inv(a)
                break
            except SingularMatrixError:
                continue
        b = rng.integers(0, 256, size, dtype=np.uint8)
        x = mat_solve(a, b)
        expected = mat_mul(inv, b.reshape(-1, 1)).ravel()
        np.testing.assert_array_equal(x, expected)
