"""Unit and property tests for GF(2^8) matrix algebra."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import (
    SingularMatrixError,
    apply_matrix_to_blocks,
    mat_identity,
    mat_inv,
    mat_mul,
    systematic_vandermonde_generator,
    vandermonde,
)

PAPER_CODES = [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)]


def random_invertible(rng, size):
    while True:
        m = rng.integers(0, 256, (size, size), dtype=np.uint8)
        try:
            return m, mat_inv(m)
        except SingularMatrixError:
            continue


class TestMatMul:
    def test_identity_neutral(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (4, 4), dtype=np.uint8)
        np.testing.assert_array_equal(mat_mul(a, mat_identity(4)), a)
        np.testing.assert_array_equal(mat_mul(mat_identity(4), a), a)

    def test_incompatible_shapes_rejected(self):
        with pytest.raises(ValueError):
            mat_mul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25)
    def test_associative(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, (3, 4), dtype=np.uint8)
        b = rng.integers(0, 256, (4, 2), dtype=np.uint8)
        c = rng.integers(0, 256, (2, 5), dtype=np.uint8)
        np.testing.assert_array_equal(
            mat_mul(mat_mul(a, b), c), mat_mul(a, mat_mul(b, c))
        )

    def test_zero_matrix_annihilates(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, (3, 3), dtype=np.uint8)
        z = np.zeros((3, 3), dtype=np.uint8)
        assert np.all(mat_mul(a, z) == 0)

    def test_matches_scalar_reference(self):
        from repro.gf import gf_add, gf_mul

        rng = np.random.default_rng(2)
        a = rng.integers(0, 256, (3, 4), dtype=np.uint8)
        b = rng.integers(0, 256, (4, 2), dtype=np.uint8)
        expected = np.zeros((3, 2), dtype=np.uint8)
        for i in range(3):
            for j in range(2):
                acc = 0
                for l in range(4):
                    acc = int(gf_add(acc, gf_mul(a[i, l], b[l, j])))
                expected[i, j] = acc
        np.testing.assert_array_equal(mat_mul(a, b), expected)


class TestMatInv:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_inverse_roundtrip(self, seed, size):
        rng = np.random.default_rng(seed)
        m, m_inv = random_invertible(rng, size)
        np.testing.assert_array_equal(mat_mul(m, m_inv), mat_identity(size))
        np.testing.assert_array_equal(mat_mul(m_inv, m), mat_identity(size))

    def test_singular_raises(self):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            mat_inv(m)

    def test_zero_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            mat_inv(np.zeros((3, 3), dtype=np.uint8))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            mat_inv(np.zeros((2, 3), dtype=np.uint8))

    def test_identity_self_inverse(self):
        np.testing.assert_array_equal(mat_inv(mat_identity(5)), mat_identity(5))

    def test_pivoting_handles_zero_diagonal(self):
        m = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        np.testing.assert_array_equal(mat_inv(m), m)

    def test_input_not_mutated(self):
        m = np.array([[0, 1], [1, 1]], dtype=np.uint8)
        copy = m.copy()
        mat_inv(m)
        np.testing.assert_array_equal(m, copy)


class TestVandermonde:
    def test_shape_and_first_column(self):
        v = vandermonde(5, 3)
        assert v.shape == (5, 3)
        assert np.all(v[:, 0] == 1)

    def test_second_column_is_points(self):
        v = vandermonde(5, 3)
        np.testing.assert_array_equal(v[:, 1], np.arange(5, dtype=np.uint8))

    def test_row_zero(self):
        # 0^0 = 1 convention, 0^j = 0 for j > 0.
        v = vandermonde(4, 4)
        np.testing.assert_array_equal(v[0], np.array([1, 0, 0, 0], dtype=np.uint8))

    def test_too_many_rows_rejected(self):
        with pytest.raises(ValueError):
            vandermonde(257, 2)


class TestSystematicGenerator:
    @pytest.mark.parametrize("n,k", PAPER_CODES)
    def test_top_identity(self, n, k):
        g = systematic_vandermonde_generator(n, k)
        np.testing.assert_array_equal(g[:n], mat_identity(n))

    @pytest.mark.parametrize("n,k", PAPER_CODES)
    def test_first_coding_row_all_ones(self, n, k):
        """P0 = XOR of the data blocks: the pre-placement optimisation's hook."""
        g = systematic_vandermonde_generator(n, k)
        assert np.all(g[n] == 1)

    @pytest.mark.parametrize("n,k", PAPER_CODES)
    def test_mds_exhaustive(self, n, k):
        """Every choice of n rows is invertible: the code is MDS."""
        g = systematic_vandermonde_generator(n, k)
        for sel in itertools.combinations(range(n + k), n):
            mat_inv(g[list(sel)])

    def test_k_zero_is_identity(self):
        np.testing.assert_array_equal(
            systematic_vandermonde_generator(4, 0), mat_identity(4)
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            systematic_vandermonde_generator(0, 2)
        with pytest.raises(ValueError):
            systematic_vandermonde_generator(250, 10)


class TestApplyMatrixToBlocks:
    def test_identity_returns_copies(self):
        rng = np.random.default_rng(3)
        blocks = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(3)]
        out = apply_matrix_to_blocks(mat_identity(3), blocks)
        for a, b in zip(out, blocks):
            np.testing.assert_array_equal(a, b)

    def test_xor_row(self):
        blocks = [
            np.array([1, 2], dtype=np.uint8),
            np.array([4, 8], dtype=np.uint8),
        ]
        out = apply_matrix_to_blocks(np.array([[1, 1]], dtype=np.uint8), blocks)
        np.testing.assert_array_equal(out[0], np.array([5, 10], dtype=np.uint8))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            apply_matrix_to_blocks(
                mat_identity(3), [np.zeros(4, dtype=np.uint8)] * 2
            )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20)
    def test_composition(self, seed):
        """Applying A then B equals applying B@A."""
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, (3, 3), dtype=np.uint8)
        b = rng.integers(0, 256, (2, 3), dtype=np.uint8)
        blocks = [rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(3)]
        step = apply_matrix_to_blocks(b, apply_matrix_to_blocks(a, blocks))
        direct = apply_matrix_to_blocks(mat_mul(b, a), blocks)
        for x, y in zip(step, direct):
            np.testing.assert_array_equal(x, y)
