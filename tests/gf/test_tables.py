"""Unit tests for GF(2^8) table construction."""

import numpy as np
import pytest

from repro.gf.tables import (
    DEFAULT_PRIM_POLY,
    FIELD_SIZE,
    GROUP_ORDER,
    GFTableError,
    GFTables,
    get_tables,
)


class TestBuild:
    def test_default_polynomial_builds(self):
        t = GFTables.build()
        assert t.prim_poly == DEFAULT_PRIM_POLY

    def test_exp_starts_at_one(self):
        t = get_tables()
        assert t.exp[0] == 1

    def test_exp_second_entry_is_generator(self):
        assert get_tables().exp[1] == 2

    def test_exp_cycle_doubled(self):
        t = get_tables()
        np.testing.assert_array_equal(
            t.exp[:GROUP_ORDER], t.exp[GROUP_ORDER : 2 * GROUP_ORDER]
        )

    def test_exp_tail_is_zero(self):
        t = get_tables()
        assert np.all(t.exp[2 * GROUP_ORDER :] == 0)

    def test_log_exp_roundtrip(self):
        t = get_tables()
        for a in range(1, FIELD_SIZE):
            assert t.exp[t.log[a]] == a

    def test_exp_log_roundtrip(self):
        t = get_tables()
        for i in range(GROUP_ORDER):
            assert t.log[t.exp[i]] == i

    def test_nonzero_exp_values_are_distinct(self):
        t = get_tables()
        assert len(set(t.exp[:GROUP_ORDER].tolist())) == GROUP_ORDER

    def test_log_zero_sentinel_lands_in_zero_region(self):
        t = get_tables()
        assert t.exp[t.log[0]] == 0
        assert t.exp[t.log[0] + t.log[255]] == 0
        assert t.exp[t.log[0] + t.log[0]] == 0

    def test_inverse_table(self):
        t = get_tables()
        for a in range(1, FIELD_SIZE):
            prod = t.mul_table[a, t.inv[a]]
            assert prod == 1, a

    def test_inv_of_zero_is_sentinel_zero(self):
        assert get_tables().inv[0] == 0

    def test_mul_table_zero_row_and_column(self):
        t = get_tables()
        assert np.all(t.mul_table[0] == 0)
        assert np.all(t.mul_table[:, 0] == 0)

    def test_mul_table_identity_row(self):
        t = get_tables()
        np.testing.assert_array_equal(t.mul_table[1], np.arange(256, dtype=np.uint8))

    def test_mul_table_symmetric(self):
        t = get_tables()
        np.testing.assert_array_equal(t.mul_table, t.mul_table.T)

    def test_tables_are_readonly(self):
        t = get_tables()
        for arr in (t.exp, t.log, t.inv, t.mul_table):
            assert not arr.flags.writeable


class TestValidation:
    def test_rejects_low_degree_polynomial(self):
        with pytest.raises(GFTableError):
            GFTables.build(0x1B)

    def test_rejects_high_degree_polynomial(self):
        with pytest.raises(GFTableError):
            GFTables.build(0x211)

    def test_rejects_reducible_polynomial(self):
        # x^8 + 1 = (x + 1)^8 over GF(2): reducible.
        with pytest.raises(GFTableError):
            GFTables.build(0x101)

    def test_alternative_primitive_polynomial_works(self):
        # x^8 + x^4 + x^3 + x + 1 (0x11B, the AES polynomial) — x is NOT a
        # generator there, so our log construction must reject it.
        with pytest.raises(GFTableError):
            GFTables.build(0x11B)

    def test_0x12d_polynomial_works(self):
        # Another polynomial with x as a generator.
        t = GFTables.build(0x12D)
        assert t.exp[0] == 1

    def test_cache_returns_same_object(self):
        assert get_tables() is get_tables()
