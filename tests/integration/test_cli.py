"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "6, 7, 8, 9, 10, 11, 12, 13, 14" in out
        assert "rpr" in out and "car" in out and "traditional" in out


class TestFigure:
    def test_figure6(self, capsys):
        assert main(["figure", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "(12,4)" in out

    def test_figure8(self, capsys):
        assert main(["figure", "8"]) == 0
        out = capsys.readouterr().out
        assert "rpr_time_s" in out

    def test_capped_figure(self, capsys):
        assert main(["figure", "11", "--cap", "5"]) == 0
        out = capsys.readouterr().out
        assert "(12,4,4)" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "99"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestTable:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "583.39" in out
        assert "Sydney" in out

    def test_unknown_table(self, capsys):
        assert main(["table", "7"]) == 2


class TestRepair:
    def test_default_repair(self, capsys):
        assert main(["repair"]) == 0
        out = capsys.readouterr().out
        assert "total repair time" in out
        assert "scheme rpr" in out

    def test_multi_failure_ec2(self, capsys):
        assert (
            main(
                [
                    "repair",
                    "--code",
                    "8,4",
                    "--fail",
                    "0,3",
                    "--scheme",
                    "traditional",
                    "--testbed",
                    "ec2",
                    "--placement",
                    "contiguous",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "failed blocks [0, 3]" in out

    def test_bad_code_format(self, capsys):
        assert main(["repair", "--code", "12-4"]) == 2
        assert "--code" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestTimeline:
    def test_timeline_renders(self, capsys):
        assert main(["timeline", "--code", "6,2", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "n" in out and "|" in out and "#" in out

    def test_timeline_bad_code(self, capsys):
        with pytest.raises(SystemExit):
            main(["timeline", "--code", "oops"])


class TestTrace:
    def test_trace_prints_rack_and_path_report(self, capsys):
        assert main(["trace", "--code", "6,4", "--fail", "1", "--scheme", "rpr"]) == 0
        out = capsys.readouterr().out
        assert "per-rack utilization" in out
        assert "critical path" in out
        assert "up_idle_%" in out

    def test_trace_critical_path_ends_at_makespan(self, capsys):
        """The acceptance contract: the JSON trace's critical path is
        contiguous and its end equals the simulated makespan."""
        import json

        assert main(["trace", "--code", "6,4", "--fail", "1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        path = data["critical_path"]
        assert path[0]["start"] == pytest.approx(0.0, abs=1e-9)
        for prev, cur in zip(path, path[1:]):
            assert cur["start"] == pytest.approx(prev["end"], rel=1e-9)
        assert path[-1]["end"] == pytest.approx(data["makespan"], rel=1e-9)

    def test_trace_gantt(self, capsys):
        assert main(["trace", "--code", "6,2", "--gantt", "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "|" in out and "%" in out

    def test_trace_jsonl(self, capsys):
        import json

        from repro.sim import RunTrace

        assert main(["trace", "--code", "6,2", "--jsonl"]) == 0
        text = capsys.readouterr().out
        records = [json.loads(line) for line in text.strip().splitlines()]
        assert records[0]["record"] == "trace"
        assert RunTrace.from_json_lines(text).makespan == records[0]["makespan"]

    def test_trace_ec2_traditional(self, capsys):
        assert (
            main(["trace", "--code", "6,2", "--scheme", "traditional", "--testbed", "ec2"])
            == 0
        )
        assert "bottleneck report" in capsys.readouterr().out

    def test_faulted_trace_reports_the_chosen_attempt(self, capsys):
        argv = ["trace", "--code", "8,3", "--fail", "2", "--kill", "6@0.5"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "under injected faults" in out
        assert "attempt 2 of 2" in out
        assert main(argv + ["--attempt", "0"]) == 0
        first = capsys.readouterr().out
        assert "attempt 1 of 2" in first
        assert "abort" in first  # the path walks across the abort

    def test_faulted_trace_attempt_out_of_range(self, capsys):
        assert (
            main(["trace", "--code", "8,3", "--fail", "2", "--kill", "6@0.5",
                  "--attempt", "9"])
            == 2
        )
        assert "out of range" in capsys.readouterr().err


class TestTelemetry:
    def test_report_summarises_spans_and_counters(self, capsys):
        assert main(["telemetry", "report", "--code", "6,2"]) == 0
        out = capsys.readouterr().out
        assert "telemetry (sim clock)" in out
        assert "bytes.cross_rack" in out
        assert "slowest ops:" in out

    def test_diff_aligns_every_op(self, capsys):
        assert (
            main(["telemetry", "diff", "--code", "6,2", "--scheme", "rpr",
                  "--block-size", "8192"])
            == 0
        )
        out = capsys.readouterr().out
        assert "0 sim-only, 0 live-only" in out
        assert "worst divergers" in out

    def test_export_chrome_trace_loads(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "trace.json"
        assert (
            main(["telemetry", "export", "--code", "6,2", "--out", str(out_file)])
            == 0
        )
        doc = json.loads(out_file.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_export_jsonl_round_trips(self, capsys, tmp_path):
        from repro.telemetry import from_jsonl, to_jsonl

        out_file = tmp_path / "trace.jsonl"
        assert (
            main(["telemetry", "export", "--format", "jsonl", "--code", "6,2",
                  "--out", str(out_file)])
            == 0
        )
        text = out_file.read_text()
        assert to_jsonl(from_jsonl(text)) == text

    def test_export_refuses_jsonl_of_both_sources(self, capsys):
        assert (
            main(["telemetry", "export", "--format", "jsonl", "--source", "both"])
            == 2
        )
        assert "single trace" in capsys.readouterr().err


class TestRebuild:
    def test_rebuild_runs(self, capsys):
        assert main(["rebuild", "--stripes", "6", "--node", "1"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "cross-rack traffic" in out

    def test_rebuild_balanced_sequential(self, capsys):
        assert (
            main(
                [
                    "rebuild",
                    "--stripes",
                    "6",
                    "--mode",
                    "sequential",
                    "--rebuild",
                    "replacement",
                    "--balance",
                ]
            )
            == 0
        )


class TestDurability:
    def test_durability_runs(self, capsys):
        assert main(["durability", "--code", "6,2"]) == 0
        out = capsys.readouterr().out
        assert "MTTDL" in out
        assert "amplification" in out

    def test_custom_mtbf(self, capsys):
        assert main(["durability", "--code", "6,2", "--block-mtbf-years", "1"]) == 0


class TestJsonOutput:
    def test_figure_json(self, capsys):
        import json

        assert main(["figure", "6", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["figure"] == "6"
        assert len(data["rows"]) == 6
        assert all("traditional_s" in row for row in data["rows"])

    def test_figure_json_capped(self, capsys):
        import json

        assert main(["figure", "11", "--cap", "5", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert all(row["sampled"] in (True, False) for row in data["rows"])


class TestCompare:
    def test_compare_single_failure(self, capsys):
        assert main(["compare", "--code", "6,2", "--fail", "1"]) == 0
        out = capsys.readouterr().out
        assert "traditional" in out and "car" in out and "rpr" in out
        assert "vs_traditional_%" in out

    def test_compare_multi_failure_drops_car(self, capsys):
        assert main(["compare", "--code", "8,4", "--fail", "0,1"]) == 0
        out = capsys.readouterr().out
        assert "car" not in out.splitlines()[-1]
        assert "rpr" in out


class TestExtensionCommand:
    def test_lists_extensions(self, capsys):
        main(["list"])
        assert "node-rebuild" in capsys.readouterr().out

    def test_lrc_extension(self, capsys):
        assert main(["extension", "lrc"]) == 0
        out = capsys.readouterr().out
        assert "lrc(12,2,2)" in out and "rs(12,4)" in out

    def test_durability_extension(self, capsys):
        assert main(["extension", "durability"]) == 0
        assert "amplification" in capsys.readouterr().out

    def test_node_rebuild_extension(self, capsys):
        assert main(["extension", "node-rebuild"]) == 0
        out = capsys.readouterr().out
        assert "scatter" in out and "sequential" in out

    def test_unknown_extension(self, capsys):
        assert main(["extension", "nope"]) == 2


class TestJsonEverywhere:
    """Every report subcommand must emit parseable JSON under --json."""

    REPORT_INVOCATIONS = [
        ["figure", "6", "--json"],
        ["repair", "--code", "6,2", "--json"],
        ["compare", "--code", "6,2", "--json"],
        ["timeline", "--code", "6,2", "--json"],
        ["trace", "--code", "6,2", "--json"],
        ["rebuild", "--code", "6,2", "--stripes", "4", "--json"],
        ["durability", "--code", "6,2", "--json"],
        ["extension", "lrc", "--json"],
        ["faults", "--code", "6,2", "--fail", "1", "--kill", "0@0.5", "--json"],
        ["live", "--code", "6,2", "--schemes", "rpr", "--json"],
        ["trace", "--code", "8,3", "--fail", "2", "--kill", "6@0.5", "--json"],
        ["telemetry", "report", "--code", "6,2", "--json"],
        [
            "telemetry", "diff", "--code", "6,2", "--scheme", "rpr",
            "--block-size", "8192", "--json",
        ],
    ]

    @pytest.mark.parametrize(
        "argv", REPORT_INVOCATIONS, ids=[argv[0] for argv in REPORT_INVOCATIONS]
    )
    def test_json_flag_emits_json(self, argv, capsys):
        import json

        assert main(argv) == 0
        data = json.loads(capsys.readouterr().out)
        assert isinstance(data, dict) and data

    def test_compare_json_rows_carry_schemes(self, capsys):
        import json

        assert main(["compare", "--code", "6,2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert {row["scheme"] for row in data["schemes"]} == {
            "traditional",
            "car",
            "rpr",
        }

    def test_timeline_json_intervals_end_at_makespan(self, capsys):
        import json

        assert main(["timeline", "--code", "6,2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        latest = max(
            interval["end"] for row in data["rows"] for interval in row["intervals"]
        )
        assert latest == pytest.approx(data["makespan_s"])


class TestLiveCommand:
    def test_live_validate_passes(self, capsys):
        assert main(
            ["live", "--code", "6,2", "--block-size", "16384", "--validate"]
        ) == 0
        out = capsys.readouterr().out
        assert "measured_s" in out and "ratio" in out
        assert "matches simulator" in out

    def test_live_json_reports_per_scheme_ratio(self, capsys):
        import json

        assert main(
            ["live", "--code", "6,2", "--schemes", "rpr,traditional",
             "--block-size", "16384", "--json", "--validate"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["validated"] is True
        assert all("ratio" in row for row in data["schemes"])

    def test_live_rejects_unknown_scheme(self, capsys):
        assert main(["live", "--schemes", "nope"]) == 2
        assert "unknown schemes" in capsys.readouterr().err
