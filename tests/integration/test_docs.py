"""Executable documentation: every python block in docs/TUTORIAL.md runs.

Docs rot silently; this test extracts each fenced ``python`` block from
the tutorial and executes it in one shared namespace (blocks build on
each other, as a reader would run them).
"""

import re
from pathlib import Path

DOCS = Path(__file__).resolve().parents[2] / "docs"


def python_blocks(path):
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestTutorial:
    def test_blocks_exist(self):
        blocks = python_blocks(DOCS / "TUTORIAL.md")
        assert len(blocks) >= 6

    def test_all_blocks_execute(self):
        namespace: dict = {}
        for i, block in enumerate(python_blocks(DOCS / "TUTORIAL.md")):
            try:
                exec(compile(block, f"<tutorial block {i}>", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                raise AssertionError(
                    f"tutorial block {i} failed: {exc}\n---\n{block}"
                ) from exc


class TestReadmeSnippets:
    def test_quickstart_snippet_runs(self):
        """The README's two python blocks execute as printed."""
        readme = Path(__file__).resolve().parents[2] / "README.md"
        namespace: dict = {}
        blocks = python_blocks(readme)
        assert blocks, "README lost its quickstart snippets"
        for i, block in enumerate(blocks):
            exec(compile(block, f"<readme block {i}>", "exec"), namespace)
