r"""Docs-consistency check: every identifier docs/API.md names must exist.

docs/API.md is a promise about the public surface; this test keeps it
honest.  Every backticked item is resolved against the module(s) named by
its section header (or, for table rows, a ``repro.*`` path on the same
line) — a renamed or deleted function fails the tier-1 run with a list of
dangling references.

Parsing rules (shared with the doc's house style):

* ``## repro.x — …`` headers set the module context for the section;
  headers naming several modules (``repro.a / repro.b``) try each.
* A ``repro.*`` path anywhere on a line adds line-local context (with
  all its dotted prefixes), so per-row module tables (the Extensions
  section) and internals paragraphs resolve too.
* Inside backticks, text after ``(`` is dropped (signatures), ``/``
  separates alternatives, and dotted names resolve as attribute chains.
* A bare name may also resolve as an attribute of anything named in an
  earlier backtick on the same line (``\`RSCode\` … \`encode\``), the
  house style for method lists.
* Chunks that are not Python identifiers (shell commands, flags, file
  names) are ignored, as is everything in CLI-labelled sections.
"""

import importlib
import re
from pathlib import Path

import pytest

API = Path(__file__).resolve().parents[2] / "docs" / "API.md"

_MODULE_RE = re.compile(r"repro(?:\.\w+)+|^repro$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


def _module_paths(text: str) -> list[str]:
    return re.findall(r"\brepro(?:\.\w+)*\b", text)


def _candidate_names(chunk: str) -> list[str]:
    """Backtick content -> identifier candidates (or [] for non-code)."""
    chunk = chunk.split("(")[0]
    if ".md" in chunk:
        return []  # file reference (`docs/ARCHITECTURE.md`), not an API item
    names = []
    for part in chunk.split("/"):
        part = part.strip().rstrip(".")
        if part and _IDENT_RE.fullmatch(part):
            names.append(part)
        elif part:
            return []  # e.g. shell fragments: skip the whole chunk
    return names


def _attr_chain(obj, name: str):
    """Follow ``a.b.c`` through attributes; (found, value)."""
    for attr in name.split("."):
        if not hasattr(obj, attr):
            return False, None
        obj = getattr(obj, attr)
    return True, obj


def _resolve_object(name: str, modules: list[str]):
    """(found, object) for ``name`` via import or attr chains in ``modules``."""
    if name.startswith("repro"):
        try:
            return True, importlib.import_module(name)
        except ImportError:
            parts = name.rsplit(".", 1)
            if len(parts) == 2:
                try:
                    mod = importlib.import_module(parts[0])
                    return _attr_chain(mod, parts[1])
                except ImportError:
                    return False, None
            return False, None
    for module_path in modules:
        try:
            mod = importlib.import_module(module_path)
        except ImportError:
            continue
        found, obj = _attr_chain(mod, name)
        if found:
            return True, obj
    return False, None


def _resolve(name: str, modules: list[str], anchors=()) -> bool:
    """Can ``name`` be found in ``modules`` or on a same-line anchor object?"""
    found, _ = _resolve_object(name, modules)
    if found:
        return True
    for anchor in anchors:
        ok, _ = _attr_chain(anchor, name)
        if ok:
            return True
    return False


def _prefixes(module_path: str) -> list[str]:
    """``repro.a.b`` -> [``repro.a.b``, ``repro.a``] (deepest first)."""
    parts = module_path.split(".")
    return [".".join(parts[:i]) for i in range(len(parts), 1, -1)]


def api_references() -> list[tuple[str, list[str], tuple, int]]:
    """(name, candidate modules, same-line anchors, line no) per item."""
    refs = []
    section_modules: list[str] = ["repro"]
    in_cli = False
    for lineno, line in enumerate(API.read_text().splitlines(), start=1):
        if line.startswith("##"):
            section_modules = _module_paths(line) or ["repro"]
            in_cli = "CLI" in line
            continue
        if in_cli:
            continue
        line_modules = [
            p
            for m in _module_paths(line)
            if m != "repro"
            for p in _prefixes(m)
        ]
        context = line_modules + section_modules + ["repro"]
        anchors = []
        for chunk in re.findall(r"`([^`]+)`", line):
            for name in _candidate_names(chunk):
                refs.append((name, context, tuple(anchors), lineno))
                found, obj = _resolve_object(name, context)
                if found and obj is not None:
                    anchors.append(obj)
    return refs


class TestApiDocsConsistency:
    def test_api_md_has_no_dangling_references(self):
        refs = api_references()
        assert len(refs) > 80, "API.md parse produced suspiciously few items"
        dangling = [
            f"docs/API.md:{lineno}: `{name}` (tried {modules})"
            for name, modules, anchors, lineno in refs
            if not _resolve(name, modules, anchors)
        ]
        assert not dangling, "dangling API references:\n" + "\n".join(dangling)

    def test_checker_catches_fakes(self):
        """The checker itself must not be vacuous."""
        assert not _resolve("definitely_not_a_thing", ["repro.sim"])
        assert not _resolve("repro.no_such_module", [])
        assert _resolve("RunTrace.from_result", ["repro.sim"])
        assert _resolve("repro.sim.tracing", [])
        from repro.rs import RSCode

        assert _resolve("encode", [], anchors=(RSCode,))
        assert not _resolve("decode_nothing", [], anchors=(RSCode,))


class TestObservabilityDoc:
    def test_observability_doc_exists_and_names_the_layer(self):
        doc = API.parent / "OBSERVABILITY.md"
        assert doc.exists(), "docs/OBSERVABILITY.md is missing"
        text = doc.read_text()
        for needle in ("RunTrace", "critical path", "to_json_lines", "rpr trace"):
            assert needle in text, f"OBSERVABILITY.md lost its {needle!r} coverage"

    @pytest.mark.parametrize(
        "name", ["RunTrace", "ResourceUsage", "PathSegment", "render_report"]
    )
    def test_documented_tracing_api_exists(self, name):
        import repro.sim.tracing as tracing

        assert hasattr(tracing, name)
