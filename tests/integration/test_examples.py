"""Smoke tests: every example script runs to completion.

The examples double as executable documentation; each contains its own
byte-level verification assertions, so "runs without raising" is a real
check, not a formality.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_example_inventory():
    """The deliverable requires a quickstart plus >= 2 domain scenarios."""
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
