"""Unit-level tests of the experiments harness internals."""

import pytest

from repro.experiments import (
    DEFAULT_SCENARIO_CAP,
    SweepStats,
    build_ec2_env,
    build_simics_environment,
    cap_scenarios,
    context_for,
    run_scheme,
    sweep_scheme,
)
from repro.repair import RPRScheme
from repro.rs import get_code
from repro.workloads import multi_failure_scenarios, single_failure_scenarios


class TestEnvironmentBuilders:
    def test_simics_env_shape(self):
        env = build_simics_environment(8, 4)
        assert env.code.n == 8 and env.code.k == 4
        assert env.label == "(8,4)"
        # one spare rack beyond the stripe's needs
        assert env.cluster.num_racks == 4
        assert env.block_size == 256_000_000

    def test_simics_env_custom_nodes(self):
        env = build_simics_environment(6, 2, nodes_per_rack=7)
        assert env.cluster.rack(0).size == 7

    def test_simics_contiguous_placement(self):
        env = build_simics_environment(6, 2, placement="contiguous")
        parity_rack = env.placement.rack_of_block(env.cluster, 6)
        assert env.placement.rack_of_block(env.cluster, 7) == parity_rack

    def test_ec2_env_five_racks(self):
        env = build_ec2_env(6, 2)
        assert env.cluster.num_racks == 5
        assert env.cost_model.time_with_build(256_000_000) == pytest.approx(20.0)

    def test_context_for_carries_env(self):
        env = build_simics_environment(4, 2)
        ctx = context_for(env, [1])
        assert ctx.code is env.code
        assert ctx.failed_blocks == (1,)
        assert ctx.block_size == env.block_size


class TestSweepStats:
    def test_from_outcomes(self):
        env = build_simics_environment(4, 2)
        scenarios = single_failure_scenarios(env.code, data_only=True)
        stats = sweep_scheme(env, RPRScheme(), scenarios)
        assert stats.scenarios == 4
        assert stats.min_time <= stats.mean_time <= stats.max_time
        assert stats.min_cross_blocks <= stats.mean_cross_blocks

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SweepStats.from_outcomes([])

    def test_single_outcome_degenerate(self):
        env = build_simics_environment(4, 2)
        outcome = run_scheme(env, RPRScheme(), [0])
        stats = SweepStats.from_outcomes([outcome])
        assert stats.min_time == stats.mean_time == stats.max_time


class TestCapScenarios:
    def test_under_cap_untouched(self):
        code = get_code(6, 3)
        scenarios = multi_failure_scenarios(code, 2)
        assert cap_scenarios(scenarios, code, cap=1000) is scenarios

    def test_over_cap_sampled_deterministically(self):
        code = get_code(12, 4)
        scenarios = multi_failure_scenarios(code, 3)  # 560 combos
        a = cap_scenarios(scenarios, code, cap=50)
        b = cap_scenarios(scenarios, code, cap=50)
        assert len(a) == 50
        assert a == b
        assert all(s.size == 3 for s in a)

    def test_default_cap_value(self):
        assert DEFAULT_SCENARIO_CAP == 256
