"""Integration tests: the experiment harness reproduces the paper's shapes.

These are the repository's headline assertions — each one states a
qualitative claim from the evaluation section and checks the measured
rows uphold it.  Absolute values are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    build_simics_environment,
    figure6_rows,
    figure9_rows,
    figure11_rows,
    figure12_rows,
    figure14_rows,
    format_table,
    model_vs_simulation_rows,
    run_scheme,
    single_failure_rows,
)
from repro.experiments.single import figure8_rows
from repro.repair import RPRScheme, TraditionalRepair


@pytest.fixture(scope="module")
def fig8():
    return figure8_rows()


@pytest.fixture(scope="module")
def fig9():
    return figure9_rows(cap=40)


@pytest.fixture(scope="module")
def fig11():
    return figure11_rows(cap=40)


@pytest.fixture(scope="module")
def fig12():
    return figure12_rows()


class TestFigure6:
    def test_rpr_always_below_traditional(self):
        for row in figure6_rows():
            assert row["rpr_s"] < row["traditional_s"]


class TestFigures7And8:
    def test_cross_traffic_car_equals_rpr(self, fig8):
        """Fig. 7: identical bars for CAR and RPR (both partial-decode)."""
        for row in fig8:
            assert row["car_cross_blocks"] == pytest.approx(
                row["rpr_cross_blocks"]
            )

    def test_cross_traffic_below_traditional(self, fig8):
        for row in fig8:
            assert row["rpr_cross_blocks"] < row["tra_cross_blocks"]

    def test_repair_time_ordering(self, fig8):
        """Fig. 8: RPR <= CAR <= traditional for every configuration."""
        for row in fig8:
            assert row["rpr_time_s"] <= row["car_time_s"] + 1e-9
            assert row["car_time_s"] <= row["tra_time_s"] + 1e-9

    def test_largest_code_gives_largest_reduction(self, fig8):
        """The paper's 'up to' numbers come from (12,4)."""
        best = max(fig8, key=lambda r: r["rpr_vs_tra_pct"])
        assert best["code"] == "(12,4)"
        assert best["rpr_vs_tra_pct"] > 70.0

    def test_rpr_vs_car_gap_grows_with_rack_count(self, fig8):
        """Pipelining pays when there are more racks to pipeline across:
        the k=2 family's gap grows monotonically from (4,2) to (8,2)."""
        by_code = {r["code"]: r["rpr_vs_car_pct"] for r in fig8}
        assert by_code["(4,2)"] < by_code["(6,2)"]
        assert by_code["(8,2)"] > 20.0


class TestFigures9And10:
    def test_rpr_faster_everywhere(self, fig9):
        for row in fig9:
            assert row["rpr_time_s"] < row["tra_time_s"]
            assert row["time_reduction_pct"] > 30.0

    def test_traffic_reduced_everywhere(self, fig9):
        for row in fig9:
            assert row["traffic_reduction_pct"] > 0.0

    def test_min_max_caps_bracket_mean(self, fig9):
        for row in fig9:
            assert (
                row["rpr_time_min_s"]
                <= row["rpr_time_s"]
                <= row["rpr_time_max_s"]
            )


class TestFigure11:
    def test_worst_case_still_faster_for_low_overhead_codes(self, fig11):
        for row in fig11:
            assert row["rpr_time_s"] < row["tra_time_s"]

    def test_worst_case_reduction_smaller_than_nonworst(self, fig9, fig11):
        """§4.3: the worst case is RPR's weakest scenario."""
        worst_12_4 = next(r for r in fig11 if r["code"] == "(12,4,4)")
        nonworst_12_4 = next(r for r in fig9 if r["code"] == "(12,4,2)")
        assert (
            worst_12_4["time_reduction_pct"]
            < nonworst_12_4["time_reduction_pct"]
        )


class TestFigure12:
    def test_ordering_on_ec2(self, fig12):
        for row in fig12:
            assert row["rpr_time_s"] <= row["car_time_s"] <= row["tra_time_s"]

    def test_car_gap_bigger_than_simics(self, fig8, fig12):
        """§5.2.1: the decode-time gap makes RPR's lead over CAR larger on
        EC2 than on Simics (averaged over codes)."""
        simics_gap = sum(r["rpr_vs_car_pct"] for r in fig8) / len(fig8)
        ec2_gap = sum(r["rpr_vs_car_pct"] for r in fig12) / len(fig12)
        assert ec2_gap > simics_gap


class TestFigure14:
    def test_worst_case_on_ec2(self):
        rows = figure14_rows(cap=20)
        for row in rows:
            assert row["rpr_time_s"] < row["tra_time_s"]


class TestModelCrossChecks:
    def test_eq10_is_upper_bound_for_sim_traditional(self):
        """Simulated traditional <= n * t_c (local helpers go intra-rack)."""
        for row in model_vs_simulation_rows():
            assert row["sim_tra_s"] <= row["eq10_tra_s"] * 1.05

    def test_eq13_bounds_simulated_rpr(self):
        """The un-pipelined eq. (13) estimate upper-bounds real RPR up to
        decode overhead."""
        for row in model_vs_simulation_rows():
            assert row["sim_rpr_s"] <= row["eq13_rpr_bound_s"] + 5.0


class TestHarnessUtilities:
    def test_format_table_renders(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text

    def test_single_failure_rows_custom_codes(self):
        rows = single_failure_rows(build_simics_environment, codes=[(4, 2)])
        assert len(rows) == 1
        assert rows[0]["scenarios"] == 4

    def test_run_scheme_roundtrip(self):
        env = build_simics_environment(4, 2)
        outcome = run_scheme(env, RPRScheme(), [0])
        assert outcome.total_repair_time > 0
        tra = run_scheme(env, TraditionalRepair(), [0])
        assert outcome.total_repair_time < tra.total_repair_time
