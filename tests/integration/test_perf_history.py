"""Tests for the perf harness's rolling history log."""

import json

from repro.perfharness import HISTORY_NAME, append_history


def fake_report(best: float) -> dict:
    return {
        "quick": True,
        "python": "3.12.0",
        "results": {
            "hot_path": {"best_s": best, "reps": 3},
            "buffer_pool": {"hits": 10},  # non-timing entries are skipped
        },
        "derived": {"speedup_x": 2.0},
    }


class TestAppendHistory:
    def test_appends_one_timestamped_line_per_run(self, tmp_path):
        for best in (0.5, 0.25):
            path = append_history(tmp_path, {"engine": fake_report(best)})
        assert path == tmp_path / HISTORY_NAME
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert [r["engine"]["hot_path"] for r in records] == [0.5, 0.25]
        for record in records:
            assert record["timestamp"]  # ISO-8601, parseable
            assert record["quick"] is True
            assert record["engine_derived"] == {"speedup_x": 2.0}
            assert "buffer_pool" not in record["engine"]

    def test_multiple_suites_share_one_record(self, tmp_path):
        append_history(
            tmp_path, {"engine": fake_report(0.1), "coding": fake_report(0.2)}
        )
        (line,) = (tmp_path / HISTORY_NAME).read_text().splitlines()
        record = json.loads(line)
        assert record["engine"]["hot_path"] == 0.1
        assert record["coding"]["hot_path"] == 0.2
