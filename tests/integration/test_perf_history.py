"""Tests for the perf harness's rolling history log."""

import json

from repro.perfharness import HISTORY_NAME, append_history


def fake_report(best: float) -> dict:
    return {
        "quick": True,
        "python": "3.12.0",
        "results": {
            "hot_path": {"best_s": best, "reps": 3},
            "buffer_pool": {"hits": 10},  # non-timing entries are skipped
        },
        "derived": {"speedup_x": 2.0},
    }


class TestAppendHistory:
    def test_appends_one_timestamped_line_per_run(self, tmp_path):
        for best in (0.5, 0.25):
            path = append_history(tmp_path, {"engine": fake_report(best)})
        assert path == tmp_path / HISTORY_NAME
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert [r["engine"]["hot_path"] for r in records] == [0.5, 0.25]
        for record in records:
            assert record["timestamp"]  # ISO-8601, parseable
            assert record["quick"] is True
            assert record["engine_derived"] == {"speedup_x": 2.0}
            assert "buffer_pool" not in record["engine"]

    def test_multiple_suites_share_one_record(self, tmp_path):
        append_history(
            tmp_path, {"engine": fake_report(0.1), "coding": fake_report(0.2)}
        )
        (line,) = (tmp_path / HISTORY_NAME).read_text().splitlines()
        record = json.loads(line)
        assert record["engine"]["hot_path"] == 0.1
        assert record["coding"]["hot_path"] == 0.2


class TestCompareReports:
    """The perf gate's comparison logic (benchmarks/check_perf_regression.py)."""

    def report(self, **best):
        return {
            "quick": False,
            "results": {name: {"best_s": value, "reps": 3} for name, value in best.items()},
        }

    def test_clean_when_within_threshold(self):
        from repro.perfharness import compare_reports

        baseline = self.report(engine=0.100, coding=0.200)
        current = self.report(engine=0.110, coding=0.190)
        assert compare_reports(baseline, current) == []

    def test_flags_regressions_beyond_threshold(self):
        from repro.perfharness import compare_reports

        baseline = self.report(engine=0.100, coding=0.200)
        current = self.report(engine=0.130, coding=0.200)
        messages = compare_reports(baseline, current, threshold=0.25)
        assert len(messages) == 1
        assert messages[0].startswith("engine:")
        assert "1.30x" in messages[0]

    def test_flags_benchmarks_that_vanished(self):
        from repro.perfharness import compare_reports

        baseline = self.report(engine=0.100, renamed=0.100)
        current = self.report(engine=0.100)
        (message,) = compare_reports(baseline, current)
        assert "renamed" in message and "missing" in message

    def test_skips_sub_floor_noise(self):
        from repro.perfharness import COMPARE_FLOOR_S, compare_reports

        tiny = COMPARE_FLOOR_S / 2
        baseline = self.report(noisy=tiny)
        current = self.report(noisy=tiny * 100)
        assert compare_reports(baseline, current) == []

    def test_refuses_quick_mode_mismatch(self):
        from repro.perfharness import compare_reports

        baseline = self.report(engine=0.1)
        current = dict(self.report(engine=0.1), quick=True)
        (message,) = compare_reports(baseline, current)
        assert "quick-mode mismatch" in message
