"""Shared helpers for live-runtime tests: small scenarios, plans, stores."""

import numpy as np
import pytest

from repro.experiments import build_simics_environment, context_for
from repro.repair import (
    CARRepair,
    RPRScheme,
    TraditionalRepair,
    initial_store_for,
)
from repro.workloads import encoded_stripe

#: Small blocks keep unshaped live runs near-instant.
LIVE_BLOCK = 4 * 1024

SCHEMES = {
    "traditional": TraditionalRepair,
    "car": CARRepair,
    "rpr": RPRScheme,
}


def live_scenario(n, k, failed, scheme_name, block_size=LIVE_BLOCK, seed=7):
    """Build (plan, env, stripe, store) for one scheme on one failure set."""
    env = build_simics_environment(n, k, block_size=block_size)
    ctx = context_for(env, failed)
    plan = SCHEMES[scheme_name]().plan(ctx)
    stripe = encoded_stripe(env.code, block_size, seed=seed)
    store = initial_store_for(stripe, env.placement, failed)
    return plan, env, stripe, store


def lost_payloads(stripe, failed):
    return {bid: np.asarray(stripe.get_payload(bid)) for bid in failed}


@pytest.fixture
def scenario63():
    return live_scenario(6, 3, [1], "rpr")
