"""Live runtime tests: byte oracle, executor-ledger equality, failure modes."""

import asyncio
import copy

import numpy as np
import pytest

from repro.cluster import Cluster, HierarchicalBandwidth
from repro.live import (
    LiveTimeoutError,
    run_plan_live,
    run_plan_live_sync,
)
from repro.repair import (
    ExecutionError,
    RepairPlan,
    execute_plan,
    missing_payload_message,
)

from .conftest import live_scenario, lost_payloads

CODES = [(6, 3), (8, 3)]
SINGLE_SCHEMES = ["traditional", "car", "rpr"]


class TestByteOracle:
    @pytest.mark.parametrize("n,k", CODES)
    @pytest.mark.parametrize("scheme", SINGLE_SCHEMES)
    def test_unshaped_run_matches_executor(self, n, k, scheme):
        """Unshaped live run == byte executor: recovered bytes AND ledgers."""
        plan, env, stripe, store = live_scenario(n, k, [1], scheme)
        oracle = execute_plan(plan, env.cluster, copy.deepcopy(store))
        live = run_plan_live_sync(plan, env.cluster, store, bandwidth=None)
        for bid, payload in lost_payloads(stripe, [1]).items():
            np.testing.assert_array_equal(live.recovered[bid], payload)
            np.testing.assert_array_equal(oracle.recovered[bid], payload)
        assert live.intra_rack_bytes == oracle.intra_rack_bytes
        assert live.cross_rack_bytes == oracle.cross_rack_bytes
        assert live.combine_count == oracle.combine_count
        assert live.sends_executed == oracle.sends_executed
        assert live.uploaded_by_node == oracle.uploaded_by_node
        assert live.downloaded_by_node == oracle.downloaded_by_node
        assert live.cross_uploaded_by_rack == oracle.cross_uploaded_by_rack

    @pytest.mark.parametrize("scheme", ["traditional", "rpr"])
    def test_multi_block_recovery(self, scheme):
        plan, env, stripe, store = live_scenario(6, 3, [0, 2], scheme)
        live = run_plan_live_sync(plan, env.cluster, store, bandwidth=None)
        for bid, payload in lost_payloads(stripe, [0, 2]).items():
            np.testing.assert_array_equal(live.recovered[bid], payload)

    def test_tcp_transport_recovers_bytes(self, scenario63):
        plan, env, stripe, store = scenario63
        live = run_plan_live_sync(plan, env.cluster, store, transport="tcp")
        np.testing.assert_array_equal(
            live.recovered[1], lost_payloads(stripe, [1])[1]
        )
        assert live.transport == "tcp"

    def test_every_op_gets_a_timing(self, scenario63):
        plan, env, stripe, store = scenario63
        live = run_plan_live_sync(plan, env.cluster, store)
        assert set(live.timings) == set(plan.ops)
        assert all(t.end >= t.start >= 0.0 for t in live.timings.values())
        assert live.makespan == pytest.approx(
            max(t.end for t in live.timings.values())
        )

    def test_result_to_dict_is_json_shaped(self, scenario63):
        import json

        plan, env, stripe, store = scenario63
        live = run_plan_live_sync(plan, env.cluster, store)
        dumped = json.loads(json.dumps(live.to_dict()))
        assert dumped["recovered_blocks"] == [1]
        assert dumped["shaped"] is False


class TestShapedRuns:
    def test_shaped_run_is_slower_and_still_correct(self, scenario63):
        plan, env, stripe, store = scenario63
        shaped_store = copy.deepcopy(store)
        fast = run_plan_live_sync(plan, env.cluster, store)
        bw = HierarchicalBandwidth(intra=8e6, cross=8e5)
        slow = run_plan_live_sync(
            plan, env.cluster, shaped_store, bandwidth=bw
        )
        np.testing.assert_array_equal(
            slow.recovered[1], lost_payloads(stripe, [1])[1]
        )
        assert slow.shaped and not fast.shaped
        assert slow.makespan > fast.makespan

    def test_timeout_raises_instead_of_hanging(self, scenario63):
        plan, env, stripe, store = scenario63
        bw = HierarchicalBandwidth(intra=200.0, cross=20.0)  # glacial links
        with pytest.raises(LiveTimeoutError, match="unfinished ops"):
            run_plan_live_sync(
                plan, env.cluster, store, bandwidth=bw, timeout=0.2
            )

    def test_exclusive_ports_off_still_recovers(self, scenario63):
        plan, env, stripe, store = scenario63
        live = run_plan_live_sync(
            plan, env.cluster, store, exclusive_ports=False
        )
        np.testing.assert_array_equal(
            live.recovered[1], lost_payloads(stripe, [1])[1]
        )


class TestErrors:
    def test_missing_send_payload_message_shape(self):
        cluster = Cluster.homogeneous(2, 2)
        plan = RepairPlan(block_size=4)
        plan.add_send("s0", 0, 1, "block:9")
        plan.mark_output(9, 1, "block:9")
        with pytest.raises(ExecutionError) as err:
            run_plan_live_sync(plan, cluster, {}, timeout=5.0)
        assert str(err.value) == missing_payload_message(
            "send", "s0", 0, 1, ["block:9"], 0
        )

    def test_missing_combine_payloads_lists_full_set(self):
        cluster = Cluster.homogeneous(2, 2)
        plan = RepairPlan(block_size=4)
        plan.add_combine("c0", 1, "out", terms=(("a", 1), ("b", 2)))
        plan.mark_output(0, 1, "out")
        with pytest.raises(ExecutionError) as err:
            run_plan_live_sync(plan, cluster, {}, timeout=5.0)
        assert str(err.value) == missing_payload_message(
            "combine", "c0", 0, 1, ["a", "b"], 1
        )

    def test_async_entrypoint_is_directly_awaitable(self, scenario63):
        plan, env, stripe, store = scenario63

        async def _run():
            return await run_plan_live(plan, env.cluster, store)

        live = asyncio.run(_run())
        np.testing.assert_array_equal(
            live.recovered[1], lost_payloads(stripe, [1])[1]
        )
