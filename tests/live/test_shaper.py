"""Token-bucket shaper tests: deterministic accounting + wall-clock rate."""

import asyncio
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, HierarchicalBandwidth
from repro.live import (
    ClassedBucket,
    LinkShaper,
    QoSLinkShaper,
    TokenBucket,
    WeightedTokenBucket,
)


class FakeLoop:
    """Deterministic clock/sleep pair: time advances only by sleeping."""

    def __init__(self, oversleep: float = 1.0):
        self.now = 0.0
        self.oversleep = oversleep
        self.slept = []

    def clock(self):
        return self.now

    async def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds * self.oversleep

    def advance(self, seconds):
        self.now += seconds


def drain(bucket, sizes):
    async def _run():
        for n in sizes:
            await bucket.acquire(n)

    asyncio.run(_run())


class TestTokenBucketAccounting:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(-5.0)
        with pytest.raises(ValueError):
            TokenBucket(100.0, capacity=0.0)

    def test_first_transfer_pays_full_fare(self):
        loop = FakeLoop()
        bucket = TokenBucket(1000.0, clock=loop.clock, sleep=loop.sleep)
        drain(bucket, [500])
        assert loop.now == pytest.approx(0.5)

    def test_zero_and_negative_sizes_are_free(self):
        loop = FakeLoop()
        bucket = TokenBucket(1000.0, clock=loop.clock, sleep=loop.sleep)
        drain(bucket, [0, -3])
        assert loop.slept == []

    @settings(max_examples=60, deadline=None)
    @given(
        rate=st.floats(min_value=10.0, max_value=1e6),
        sizes=st.lists(st.integers(min_value=1, max_value=1 << 16), min_size=1, max_size=40),
    )
    def test_back_to_back_elapsed_is_total_over_rate(self, rate, sizes):
        """With exact sleeps and no idle gaps, N bytes take exactly N/rate."""
        loop = FakeLoop()
        bucket = TokenBucket(rate, clock=loop.clock, sleep=loop.sleep)
        drain(bucket, sizes)
        assert loop.now == pytest.approx(sum(sizes) / rate, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        rate=st.floats(min_value=10.0, max_value=1e6),
        sizes=st.lists(st.integers(min_value=1, max_value=1 << 16), min_size=1, max_size=40),
        oversleep=st.floats(min_value=1.0, max_value=3.0),
    )
    def test_oversleep_never_runs_ahead_of_rate(self, rate, sizes, oversleep):
        """A jittery sleeper can only be late, never ahead of the rate."""
        loop = FakeLoop(oversleep=oversleep)
        bucket = TokenBucket(rate, clock=loop.clock, sleep=loop.sleep)
        drain(bucket, sizes)
        assert loop.now >= sum(sizes) / rate - 1e-9

    def test_idle_credit_is_capped_at_capacity(self):
        loop = FakeLoop()
        bucket = TokenBucket(1000.0, capacity=100.0, clock=loop.clock, sleep=loop.sleep)
        loop.advance(60.0)  # idles way past the burst window
        drain(bucket, [200])
        # Only `capacity` bytes ride for free, the rest pays full fare.
        assert loop.now == pytest.approx(60.0 + 100.0 / 1000.0)

    def test_reset_drops_idle_credit_but_keeps_debt(self):
        loop = FakeLoop()
        bucket = TokenBucket(1000.0, capacity=100.0, clock=loop.clock, sleep=loop.sleep)
        loop.advance(60.0)
        bucket.reset()
        drain(bucket, [200])
        assert loop.now == pytest.approx(60.0 + 0.2)
        # Debt survives a reset: an interleaved reset cannot forgive pacing.
        loop2 = FakeLoop()
        b2 = TokenBucket(1000.0, clock=loop2.clock, sleep=loop2.sleep)

        async def _run():
            task = asyncio.ensure_future(b2.acquire(500))
            await asyncio.sleep(0)
            b2.reset()
            await task

        asyncio.run(_run())
        assert loop2.now == pytest.approx(0.5)


class _ExplodingStream:
    """Stream whose write raises after ``ok_writes`` successful writes."""

    def __init__(self, ok_writes: int):
        self.ok_writes = ok_writes
        self.writes = 0

    async def write(self, data):
        self.writes += 1
        if self.writes > self.ok_writes:
            raise ConnectionResetError("peer dropped the connection")

    async def aclose(self):
        pass


class TestChargeRefund:
    """A chunk charged but never written must not stay spent.

    The bucket is per-link and outlives a transfer; before the refund
    fix, a connection dropping mid-chunk left its tokens spent and the
    *next* transfer on that link started in debt it never incurred.
    """

    CHUNK = 16 * 1024

    def _failing_send(self, bucket, ok_chunks):
        from repro.live import send_frame

        # +1: the header write is write #1 and is never charged.
        stream = _ExplodingStream(ok_writes=ok_chunks + 1)
        payload = b"x" * (3 * self.CHUNK)

        async def _run():
            with pytest.raises(ConnectionResetError):
                await send_frame(
                    stream, {"op": "s0"}, payload, bucket=bucket,
                    chunk_size=self.CHUNK,
                )

        asyncio.run(_run())

    def test_failed_chunk_write_refunds_its_charge(self):
        loop = FakeLoop()
        bucket = TokenBucket(
            float(self.CHUNK), clock=loop.clock, sleep=loop.sleep
        )
        self._failing_send(bucket, ok_chunks=2)
        # 2 chunks actually hit the wire (1s each at CHUNK bytes/s); the
        # 3rd chunk's charge was rolled back when its write raised.
        t_fail = loop.now
        assert t_fail == pytest.approx(3.0)  # 3 pacing stalls elapsed
        # The runtime starts every transfer with reset(): idle credit is
        # dropped, debt is kept.  With the refund there is no debt, so
        # the next transfer pays exactly full fare; before the fix the
        # unwritten chunk's charge survived and it paid double.
        bucket.reset()
        drain(bucket, [self.CHUNK])
        assert loop.now - t_fail == pytest.approx(1.0)

    def test_refund_never_mints_extra_burst(self):
        loop = FakeLoop()
        bucket = TokenBucket(
            1000.0, capacity=100.0, clock=loop.clock, sleep=loop.sleep
        )
        bucket.refund(10_000)  # absurd refund: capped at capacity
        drain(bucket, [200])
        assert loop.now == pytest.approx(100.0 / 1000.0)

    def test_cancelled_pacing_sleep_rolls_back_the_charge(self):
        """A sender task killed mid-stall leaves the bucket clean."""
        bucket = TokenBucket(10.0)  # 100 bytes => 10s stall: never finishes

        async def _run():
            task = asyncio.ensure_future(bucket.acquire(100))
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # The rolled-back bucket owes nothing: a 1-byte acquire
            # completes in well under the 10s the leaked debt would cost.
            await asyncio.wait_for(bucket.acquire(1), timeout=2.0)

        asyncio.run(_run())


class TestWallClockRate:
    def test_long_shaped_transfer_within_ten_percent_of_rate(self):
        """The ISSUE acceptance bar: measured throughput within 10% of rate."""
        rate = 4e6  # 4 MB/s => ~0.25 s for 1 MiB
        nbytes = 1 << 20
        bucket = TokenBucket(rate)
        chunk = 16 * 1024

        async def _run():
            start = time.monotonic()
            sent = 0
            while sent < nbytes:
                step = min(chunk, nbytes - sent)
                await bucket.acquire(step)
                sent += step
            return time.monotonic() - start

        elapsed = asyncio.run(_run())
        achieved = nbytes / elapsed
        assert achieved == pytest.approx(rate, rel=0.10)


def drain_classed(bucket, cls, sizes):
    async def _run():
        for n in sizes:
            await bucket.acquire(n, cls)

    asyncio.run(_run())


class TestWeightedTokenBucket:
    WEIGHTS = {"foreground": 3.0, "repair": 1.0}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WeightedTokenBucket(0.0, self.WEIGHTS)
        with pytest.raises(ValueError):
            WeightedTokenBucket(1000.0, {})
        with pytest.raises(ValueError):
            WeightedTokenBucket(1000.0, {"foreground": 1.0, "repair": 0.0})
        with pytest.raises(ValueError):
            WeightedTokenBucket(1000.0, {"foreground": -1.0})

    def test_unknown_class_is_refused(self):
        bucket = WeightedTokenBucket(1000.0, self.WEIGHTS)
        with pytest.raises(KeyError, match="unknown traffic class"):
            asyncio.run(bucket.acquire(10, "bulk"))

    def test_weights_normalise_to_shares(self):
        bucket = WeightedTokenBucket(1000.0, self.WEIGHTS)
        assert bucket.shares["foreground"] == pytest.approx(0.75)
        assert bucket.shares["repair"] == pytest.approx(0.25)

    def test_lone_sender_sees_full_link_rate(self):
        """Work conservation: idle classes donate, so N bytes take N/rate."""
        loop = FakeLoop()
        bucket = WeightedTokenBucket(
            1000.0, self.WEIGHTS, clock=loop.clock, sleep=loop.sleep
        )
        drain_classed(bucket, "foreground", [1000])
        assert loop.now == pytest.approx(1.0, rel=1e-6)

    def test_backlogged_competitor_confines_to_guaranteed_share(self):
        """With the other class in debt there is nothing to borrow."""
        loop = FakeLoop()
        bucket = WeightedTokenBucket(
            1000.0,
            {"foreground": 1.0, "repair": 1.0},
            clock=loop.clock,
            sleep=loop.sleep,
        )
        # A repair sender is mid-stall: its balance is negative for the
        # whole window, so foreground gets exactly its 50% guarantee.
        bucket._tokens["repair"] = -1e9
        drain_classed(bucket, "foreground", [500])
        assert loop.now == pytest.approx(500 / (1000.0 * 0.5), rel=1e-6)

    def test_refund_is_capped_at_the_class_capacity(self):
        loop = FakeLoop()
        bucket = WeightedTokenBucket(
            1000.0,
            {"a": 1.0, "b": 1.0},
            capacity=100.0,
            clock=loop.clock,
            sleep=loop.sleep,
        )
        bucket.refund(10_000, "a")  # absurd refund: capped at 50 (share of 100)
        drain_classed(bucket, "a", [100])
        # 50 bytes ride on the refunded credit; the rest pays at the full
        # link rate because b never enters debt.
        assert loop.now == pytest.approx(50 / 1000.0, rel=1e-6)

    def test_foreground_never_queues_behind_repair_pacing(self):
        """Per-class locks: the priority split's whole point."""
        bucket = WeightedTokenBucket(10.0, self.WEIGHTS)  # 10 B/s: glacial

        async def _run():
            # Repair owes 100s of pacing; foreground must not care.
            hog = asyncio.ensure_future(bucket.acquire(1000, "repair"))
            await asyncio.sleep(0.01)
            assert not hog.done()
            await asyncio.wait_for(bucket.acquire(1, "foreground"), timeout=2.0)
            assert not hog.done()
            hog.cancel()
            with pytest.raises(asyncio.CancelledError):
                await hog

        asyncio.run(_run())

    def test_cancelled_acquire_rolls_back_the_class_charge(self):
        bucket = WeightedTokenBucket(10.0, self.WEIGHTS)

        async def _run():
            task = asyncio.ensure_future(bucket.acquire(1000, "repair"))
            await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # The rolled-back class owes nothing: a tiny acquire completes
            # in well under the ~100s the leaked debt would cost.
            await asyncio.wait_for(bucket.acquire(1, "repair"), timeout=2.0)

        asyncio.run(_run())

    @settings(max_examples=30, deadline=None)
    @given(
        rate=st.floats(min_value=10.0, max_value=1e6),
        sizes=st.lists(st.integers(min_value=1, max_value=1 << 16), min_size=1, max_size=20),
        fg_weight=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_lone_sender_rate_is_weight_independent(self, rate, sizes, fg_weight):
        """Whatever the split, an uncontended class gets the whole link.

        Never ahead of the rate; behind by at most one burst window per
        stall (a donor's accrual is capped at its burst share, so credit
        earned during a long stall can clip — bounded conservatism, the
        price of bounded bursts).
        """
        loop = FakeLoop()
        bucket = WeightedTokenBucket(
            rate,
            {"foreground": fg_weight, "repair": 1.0},
            clock=loop.clock,
            sleep=loop.sleep,
        )
        drain_classed(bucket, "foreground", sizes)
        ideal = sum(sizes) / rate
        slack = len(sizes) * bucket.capacity / rate
        assert ideal - 1e-9 <= loop.now <= ideal + slack + 1e-9


class TestClassedBucket:
    def test_unknown_class_is_refused(self):
        bucket = WeightedTokenBucket(1000.0, {"foreground": 1.0})
        with pytest.raises(KeyError, match="unknown traffic class"):
            ClassedBucket(bucket, "repair")

    def test_rate_is_the_guaranteed_share(self):
        bucket = WeightedTokenBucket(1000.0, {"foreground": 3.0, "repair": 1.0})
        assert ClassedBucket(bucket, "foreground").rate == pytest.approx(750.0)
        assert ClassedBucket(bucket, "repair").rate == pytest.approx(250.0)

    def test_acquire_and_refund_delegate_to_the_shared_bucket(self):
        loop = FakeLoop()
        shared = WeightedTokenBucket(
            1000.0,
            {"a": 1.0, "b": 1.0},
            capacity=100.0,
            clock=loop.clock,
            sleep=loop.sleep,
        )
        view = ClassedBucket(shared, "a")
        view.refund(10_000)
        drain(view, [100])
        # Identical to charging the weighted bucket directly (see
        # TestWeightedTokenBucket.test_refund_is_capped_at_the_class_capacity).
        assert loop.now == pytest.approx(50 / 1000.0, rel=1e-6)

    def test_reset_is_a_noop_on_the_shared_bucket(self):
        """QoS buckets outlive transfers; a per-transfer reset must not
        confiscate the other classes' (or its own) accrued credit."""
        loop = FakeLoop()
        shared = WeightedTokenBucket(
            1000.0,
            {"a": 1.0, "b": 1.0},
            capacity=100.0,
            clock=loop.clock,
            sleep=loop.sleep,
        )
        shared.refund(50, "a")
        shared.refund(50, "b")
        ClassedBucket(shared, "a").reset()
        assert shared._tokens == {"a": 50.0, "b": 50.0}


class TestQoSLinkShaper:
    WEIGHTS = {"foreground": 0.6, "repair": 0.4}

    def test_rejects_empty_weights(self):
        cluster = Cluster.homogeneous(2, 2)
        with pytest.raises(ValueError):
            QoSLinkShaper(cluster, HierarchicalBandwidth(1e6, 1e5), {})

    def test_unshaped_mode(self):
        cluster = Cluster.homogeneous(2, 2)
        shaper = QoSLinkShaper(cluster, None, self.WEIGHTS)
        assert not shaper.shaped
        assert shaper.link(0, 1) is None
        assert shaper.bucket(0, 1) is None
        assert shaper.bucket(0, 1, "foreground") is None

    def test_classes_share_one_weighted_link(self):
        cluster = Cluster.homogeneous(2, 2)
        shaper = QoSLinkShaper(
            cluster, HierarchicalBandwidth(intra=1e6, cross=1e5), self.WEIGHTS
        )
        fg = shaper.bucket(0, 1, "foreground")
        rp = shaper.bucket(0, 1, "repair")
        assert isinstance(fg, ClassedBucket) and isinstance(rp, ClassedBucket)
        # Same underlying budget: that is what makes the split a split.
        assert fg.bucket is rp.bucket
        assert fg.bucket is shaper.link(0, 1)
        assert fg.rate + rp.rate == pytest.approx(1e6)
        # Links are per directed pair and follow the bandwidth model.
        assert shaper.link(0, 2).rate == pytest.approx(1e5)
        assert shaper.link(1, 0) is not shaper.link(0, 1)

    def test_classless_bucket_degrades_to_the_base_shaper(self):
        """cls=None keeps the plain LinkShaper contract for old callers."""
        cluster = Cluster.homogeneous(2, 2)
        shaper = QoSLinkShaper(
            cluster, HierarchicalBandwidth(intra=1e6, cross=1e5), self.WEIGHTS
        )
        plain = shaper.bucket(0, 1)
        assert isinstance(plain, TokenBucket)
        assert plain.rate == pytest.approx(1e6)
        # The unclassed bucket is independent of the weighted link.
        assert shaper.bucket(0, 1) is plain


class TestLinkShaper:
    def test_unshaped_mode(self):
        cluster = Cluster.homogeneous(2, 2)
        shaper = LinkShaper(cluster, None)
        assert not shaper.shaped
        assert shaper.bucket(0, 1) is None
        assert shaper.rate(0, 1) is None
        assert shaper.latency(0, 1) == 0.0

    def test_buckets_follow_the_bandwidth_model(self):
        cluster = Cluster.homogeneous(2, 2)
        bw = HierarchicalBandwidth(intra=1e6, cross=1e5)
        shaper = LinkShaper(cluster, bw)
        assert shaper.shaped
        intra = shaper.bucket(0, 1)
        cross = shaper.bucket(0, 2)
        assert intra.rate == pytest.approx(1e6)
        assert cross.rate == pytest.approx(1e5)
        # Buckets are cached per directed pair.
        assert shaper.bucket(0, 1) is intra
        assert shaper.bucket(1, 0) is not intra
