"""Token-bucket shaper tests: deterministic accounting + wall-clock rate."""

import asyncio
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, HierarchicalBandwidth
from repro.live import LinkShaper, TokenBucket


class FakeLoop:
    """Deterministic clock/sleep pair: time advances only by sleeping."""

    def __init__(self, oversleep: float = 1.0):
        self.now = 0.0
        self.oversleep = oversleep
        self.slept = []

    def clock(self):
        return self.now

    async def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds * self.oversleep

    def advance(self, seconds):
        self.now += seconds


def drain(bucket, sizes):
    async def _run():
        for n in sizes:
            await bucket.acquire(n)

    asyncio.run(_run())


class TestTokenBucketAccounting:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0)
        with pytest.raises(ValueError):
            TokenBucket(-5.0)
        with pytest.raises(ValueError):
            TokenBucket(100.0, capacity=0.0)

    def test_first_transfer_pays_full_fare(self):
        loop = FakeLoop()
        bucket = TokenBucket(1000.0, clock=loop.clock, sleep=loop.sleep)
        drain(bucket, [500])
        assert loop.now == pytest.approx(0.5)

    def test_zero_and_negative_sizes_are_free(self):
        loop = FakeLoop()
        bucket = TokenBucket(1000.0, clock=loop.clock, sleep=loop.sleep)
        drain(bucket, [0, -3])
        assert loop.slept == []

    @settings(max_examples=60, deadline=None)
    @given(
        rate=st.floats(min_value=10.0, max_value=1e6),
        sizes=st.lists(st.integers(min_value=1, max_value=1 << 16), min_size=1, max_size=40),
    )
    def test_back_to_back_elapsed_is_total_over_rate(self, rate, sizes):
        """With exact sleeps and no idle gaps, N bytes take exactly N/rate."""
        loop = FakeLoop()
        bucket = TokenBucket(rate, clock=loop.clock, sleep=loop.sleep)
        drain(bucket, sizes)
        assert loop.now == pytest.approx(sum(sizes) / rate, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        rate=st.floats(min_value=10.0, max_value=1e6),
        sizes=st.lists(st.integers(min_value=1, max_value=1 << 16), min_size=1, max_size=40),
        oversleep=st.floats(min_value=1.0, max_value=3.0),
    )
    def test_oversleep_never_runs_ahead_of_rate(self, rate, sizes, oversleep):
        """A jittery sleeper can only be late, never ahead of the rate."""
        loop = FakeLoop(oversleep=oversleep)
        bucket = TokenBucket(rate, clock=loop.clock, sleep=loop.sleep)
        drain(bucket, sizes)
        assert loop.now >= sum(sizes) / rate - 1e-9

    def test_idle_credit_is_capped_at_capacity(self):
        loop = FakeLoop()
        bucket = TokenBucket(1000.0, capacity=100.0, clock=loop.clock, sleep=loop.sleep)
        loop.advance(60.0)  # idles way past the burst window
        drain(bucket, [200])
        # Only `capacity` bytes ride for free, the rest pays full fare.
        assert loop.now == pytest.approx(60.0 + 100.0 / 1000.0)

    def test_reset_drops_idle_credit_but_keeps_debt(self):
        loop = FakeLoop()
        bucket = TokenBucket(1000.0, capacity=100.0, clock=loop.clock, sleep=loop.sleep)
        loop.advance(60.0)
        bucket.reset()
        drain(bucket, [200])
        assert loop.now == pytest.approx(60.0 + 0.2)
        # Debt survives a reset: an interleaved reset cannot forgive pacing.
        loop2 = FakeLoop()
        b2 = TokenBucket(1000.0, clock=loop2.clock, sleep=loop2.sleep)

        async def _run():
            task = asyncio.ensure_future(b2.acquire(500))
            await asyncio.sleep(0)
            b2.reset()
            await task

        asyncio.run(_run())
        assert loop2.now == pytest.approx(0.5)


class TestWallClockRate:
    def test_long_shaped_transfer_within_ten_percent_of_rate(self):
        """The ISSUE acceptance bar: measured throughput within 10% of rate."""
        rate = 4e6  # 4 MB/s => ~0.25 s for 1 MiB
        nbytes = 1 << 20
        bucket = TokenBucket(rate)
        chunk = 16 * 1024

        async def _run():
            start = time.monotonic()
            sent = 0
            while sent < nbytes:
                step = min(chunk, nbytes - sent)
                await bucket.acquire(step)
                sent += step
            return time.monotonic() - start

        elapsed = asyncio.run(_run())
        achieved = nbytes / elapsed
        assert achieved == pytest.approx(rate, rel=0.10)


class TestLinkShaper:
    def test_unshaped_mode(self):
        cluster = Cluster.homogeneous(2, 2)
        shaper = LinkShaper(cluster, None)
        assert not shaper.shaped
        assert shaper.bucket(0, 1) is None
        assert shaper.rate(0, 1) is None
        assert shaper.latency(0, 1) == 0.0

    def test_buckets_follow_the_bandwidth_model(self):
        cluster = Cluster.homogeneous(2, 2)
        bw = HierarchicalBandwidth(intra=1e6, cross=1e5)
        shaper = LinkShaper(cluster, bw)
        assert shaper.shaped
        intra = shaper.bucket(0, 1)
        cross = shaper.bucket(0, 2)
        assert intra.rate == pytest.approx(1e6)
        assert cross.rate == pytest.approx(1e5)
        # Buckets are cached per directed pair.
        assert shaper.bucket(0, 1) is intra
        assert shaper.bucket(1, 0) is not intra
