"""Transport-layer tests: startup races, refused-connection backoff."""

import asyncio

import pytest

from repro.live import TcpTransport, connect_tcp


async def _noop_handler(node_id, stream):
    await stream.aclose()


class TestTcpTransportLifecycle:
    def test_double_start_is_refused(self):
        """Restarting over live servers must fail loudly, not rebind."""

        async def _run():
            transport = TcpTransport()
            await transport.start([0, 1], _noop_handler)
            try:
                with pytest.raises(RuntimeError, match="already started"):
                    await transport.start([0, 1], _noop_handler)
            finally:
                await transport.aclose()
            # After a clean aclose the transport is reusable.
            await transport.start([0, 1], _noop_handler)
            ports = {transport.port_of(0), transport.port_of(1)}
            await transport.aclose()
            assert len(ports) == 2

        asyncio.run(_run())

    def test_ports_are_kernel_assigned_and_registered(self):
        async def _run():
            transport = TcpTransport()
            await transport.start([0, 1, 2], _noop_handler)
            try:
                ports = [transport.port_of(n) for n in (0, 1, 2)]
            finally:
                await transport.aclose()
            return ports

        ports = asyncio.run(_run())
        assert len(set(ports)) == 3
        assert all(p > 0 for p in ports)


class TestConnectBackoff:
    def test_refused_connection_retries_until_server_appears(self):
        """A connect racing daemon startup succeeds once the bind lands."""

        async def _run():
            # Reserve a port the kernel considers free, then race a
            # connect against a server that binds it shortly after.
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()

            async def _late_server():
                await asyncio.sleep(0.15)
                return await asyncio.start_server(
                    lambda r, w: None, "127.0.0.1", port
                )

            server_task = asyncio.ensure_future(_late_server())
            stream = await connect_tcp(
                "127.0.0.1", port, attempts=10, initial_backoff=0.05
            )
            await stream.aclose()
            server = await server_task
            server.close()
            await server.wait_closed()

        asyncio.run(_run())

    def test_gives_up_after_capped_attempts(self):
        async def _run():
            probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            with pytest.raises(ConnectionRefusedError):
                await connect_tcp(
                    "127.0.0.1", port, attempts=2, initial_backoff=0.01
                )

        asyncio.run(_run())

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            asyncio.run(connect_tcp("127.0.0.1", 1, attempts=0))


class TestCancelAndWait:
    """The teardown primitive every aclose leans on: must always converge."""

    def test_cancels_a_sleeping_task(self):
        from repro.live import cancel_and_wait

        async def _run():
            task = asyncio.ensure_future(asyncio.sleep(3600))
            await asyncio.wait_for(cancel_and_wait(task), timeout=5.0)
            assert task.done() and task.cancelled()

        asyncio.run(_run())

    def test_re_pokes_a_task_that_absorbed_the_first_cancel(self):
        """The lost-cancellation bug: one CancelledError gets swallowed
        mid-RPC and the task returns to its idle loop with nobody left to
        cancel it — a bare cancel+await would park forever."""
        from repro.live import cancel_and_wait

        absorbed = asyncio.Event()

        async def stubborn():
            try:
                await asyncio.sleep(3600)
            except asyncio.CancelledError:
                pass  # swallow cancel #1 (e.g. a finally-block await won)
            absorbed.set()
            await asyncio.sleep(3600)  # cancel #2 must land here

        async def _run():
            task = asyncio.ensure_future(stubborn())
            await asyncio.sleep(0.01)
            await asyncio.wait_for(
                cancel_and_wait(task, poke_interval=0.05), timeout=5.0
            )
            assert task.done()
            assert absorbed.is_set(), "the first cancel was never absorbed"

        asyncio.run(_run())

    def test_finished_task_is_a_noop(self):
        from repro.live import cancel_and_wait

        async def _run():
            task = asyncio.ensure_future(asyncio.sleep(0))
            await task
            await cancel_and_wait(task)
            assert task.result() is None

        asyncio.run(_run())

    def test_surfaces_the_tasks_own_failure(self):
        """Only cancellation is expected noise; a real crash must not be
        silently eaten by teardown."""
        from repro.live import cancel_and_wait

        async def broken():
            raise ValueError("daemon exploded")

        async def _run():
            task = asyncio.ensure_future(broken())
            await asyncio.sleep(0.01)
            with pytest.raises(ValueError, match="daemon exploded"):
                await cancel_and_wait(task)

        asyncio.run(_run())
