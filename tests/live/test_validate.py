"""Cross-validation harness tests: sim predictions vs live measurements."""

import json

import pytest

from repro.live import DEFAULT_LIVE_BANDWIDTH, audit_store_repairs, run_live_validation
from repro.live.validate import live_environment


def _repair_record(measured: int, simulated: int) -> dict:
    return {
        "rid": "r0",
        "sid": 0,
        "measured": {"cross_rack_bytes": measured},
        "simulated": {"cross_rack_bytes": simulated},
    }


class TestStoreRepairAudit:
    def test_empty_records_are_trivially_ok(self):
        audit = audit_store_repairs([])
        assert audit.ledger_ok and audit.repairs == 0
        assert audit.measured_cross_rack_bytes == 0

    def test_matching_ledgers_pass(self):
        audit = audit_store_repairs(
            [_repair_record(8192, 8192), _repair_record(4096, 4096)]
        )
        assert audit.ledger_ok
        assert audit.repairs == 2
        assert audit.measured_cross_rack_bytes == 12288
        assert audit.simulated_cross_rack_bytes == 12288
        assert audit.mismatches == ()

    def test_mismatch_is_caught_even_if_coordinator_lied(self):
        """The audit re-derives the verdict from raw byte counts, so a
        record stamped ledger_match=True with disagreeing numbers fails."""
        bad = {**_repair_record(8192, 4096), "ledger_match": True}
        audit = audit_store_repairs([_repair_record(100, 100), bad])
        assert not audit.ledger_ok
        assert audit.mismatches == (bad,)
        assert audit.to_dict()["mismatches"] == [bad]


class TestLiveEnvironment:
    def test_scaled_bandwidth_and_block_size(self):
        env = live_environment(6, 3, block_size=32 * 1024)
        assert env.block_size == 32 * 1024
        assert env.bandwidth is DEFAULT_LIVE_BANDWIDTH


class TestCrossValidation:
    @pytest.mark.parametrize("n,k", [(6, 3), (8, 3)])
    def test_single_failure_all_schemes(self, n, k):
        """The ISSUE acceptance bar, on the wire: bytes identical, ordering
        matches the simulator, ratio computed per scheme."""
        report = run_live_validation(n, k, [1])
        assert {row.scheme for row in report.rows} == {
            "traditional",
            "car",
            "rpr",
        }
        assert report.all_bytes_ok
        assert report.ordering_ok()
        for row in report.rows:
            assert row.predicted_s > 0
            assert row.measured_s > 0
            assert row.ratio == pytest.approx(
                row.measured_s / row.predicted_s
            )
            # Live traffic must hit the simulator's cross-rack ledger exactly.
            assert row.cross_rack_bytes == row.sim_cross_rack_bytes

    def test_multi_block_drops_car(self):
        report = run_live_validation(6, 3, [0, 2])
        assert {row.scheme for row in report.rows} == {"traditional", "rpr"}
        assert report.all_bytes_ok

    def test_report_round_trips_through_json(self):
        report = run_live_validation(6, 3, [1], schemes=["rpr"])
        dumped = json.loads(json.dumps(report.to_dict()))
        assert dumped["code"] == [6, 3]
        assert dumped["all_bytes_ok"] is True
        assert dumped["schemes"][0]["scheme"] == "rpr"
        assert "ratio" in dumped["schemes"][0]

    def test_ordering_check_logic(self):
        report = run_live_validation(6, 3, [1], schemes=["traditional", "rpr"])
        # Predictions put rpr well below traditional; measurements agree.
        ranked = sorted(report.rows, key=lambda r: r.predicted_s)
        assert ranked[0].scheme == "rpr"
        assert ranked[0].measured_s < ranked[1].measured_s
