"""Wire-protocol adversarial tests: truncation, malformed frames, acks.

A single-process harness never kills a peer mid-frame, so these paths
went unexercised until the multi-process store service arrived.  The
contract pinned here: *every* malformed or truncated frame surfaces as
:class:`WireError` (or a bounded timeout) — never a hang, never short
bytes handed to the caller.
"""

import asyncio
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live import WireError, read_ack, read_frame, send_frame
from repro.live.transport import MemoryStream
from repro.live.wire import ACK, MAX_FRAME_PAYLOAD, MAX_HEADER_BYTES


def make_frame(header: dict, payload: bytes) -> bytes:
    """Raw frame bytes exactly as send_frame lays them out."""
    head = dict(header)
    head["nbytes"] = len(payload)
    encoded = json.dumps(head, separators=(",", ":")).encode()
    return struct.pack("!I", len(encoded)) + encoded + payload


def feed_and_read(raw: bytes, *, close: bool = True, timeout: float | None = None):
    """Write ``raw`` to one end, close it, read a frame from the other."""

    async def _run():
        a, b = MemoryStream.pair()
        if raw:
            await a.write(raw)
        if close:
            await a.aclose()
        return await read_frame(b, timeout=timeout)

    return asyncio.run(_run())


class TestTruncation:
    def test_eof_truncated_at_every_boundary(self):
        """Cutting the stream after any byte count must raise WireError."""
        frame = make_frame({"op": "s0", "key": "block:1"}, b"payload!")
        for cut in range(len(frame)):
            with pytest.raises(WireError):
                feed_and_read(frame[:cut])
        # Sanity: the uncut frame parses.
        header, payload = feed_and_read(frame)
        assert header["key"] == "block:1"
        assert bytes(payload) == b"payload!"

    def test_eof_mid_payload_does_not_return_short(self):
        frame = make_frame({"op": "s0"}, bytes(range(200)))
        with pytest.raises(WireError, match="mid-frame"):
            feed_and_read(frame[:-1])

    def test_silent_peer_times_out_instead_of_hanging(self):
        """A live-but-wedged peer trips the progress timeout."""
        frame = make_frame({"op": "s0"}, b"x" * 64)
        with pytest.raises(WireError, match="timed out"):
            feed_and_read(frame[: len(frame) - 10], close=False, timeout=0.05)

    def test_timeout_covers_the_header_too(self):
        with pytest.raises(WireError, match="timed out"):
            feed_and_read(b"", close=False, timeout=0.05)


class TestMalformedHeaders:
    def test_oversized_header_length_is_rejected_before_allocation(self):
        raw = struct.pack("!I", MAX_HEADER_BYTES + 1) + b"x" * 16
        with pytest.raises(WireError, match="cap"):
            feed_and_read(raw, close=False)

    def test_non_json_header_bytes(self):
        junk = b"\xff\xfenot json"
        raw = struct.pack("!I", len(junk)) + junk
        with pytest.raises(WireError, match="malformed frame"):
            feed_and_read(raw)

    def test_json_header_missing_nbytes(self):
        body = json.dumps({"op": "s0"}).encode()
        raw = struct.pack("!I", len(body)) + body
        with pytest.raises(WireError, match="malformed frame"):
            feed_and_read(raw)

    def test_negative_payload_length(self):
        body = json.dumps({"op": "s0", "nbytes": -5}).encode()
        raw = struct.pack("!I", len(body)) + body
        with pytest.raises(WireError, match="negative payload length"):
            feed_and_read(raw)

    def test_oversized_payload_length_is_rejected_before_allocation(self):
        body = json.dumps({"op": "s0", "nbytes": MAX_FRAME_PAYLOAD + 1}).encode()
        raw = struct.pack("!I", len(body)) + body
        with pytest.raises(WireError, match="cap"):
            feed_and_read(raw, close=False)

    def test_non_integer_nbytes(self):
        body = json.dumps({"op": "s0", "nbytes": "lots"}).encode()
        raw = struct.pack("!I", len(body)) + body
        with pytest.raises(WireError, match="malformed frame"):
            feed_and_read(raw)


class TestAck:
    def run(self, coro):
        return asyncio.run(coro)

    def test_missing_ack_times_out(self):
        async def _run():
            a, b = MemoryStream.pair()
            with pytest.raises(WireError, match="timed out"):
                await read_ack(b, timeout=0.05)

        self.run(_run())

    def test_peer_death_before_ack(self):
        async def _run():
            a, b = MemoryStream.pair()
            await a.aclose()
            with pytest.raises(WireError, match="mid-frame"):
                await read_ack(b)

        self.run(_run())

    def test_wrong_ack_byte(self):
        async def _run():
            a, b = MemoryStream.pair()
            await a.write(b"\x15")
            with pytest.raises(WireError, match="bad ack"):
                await read_ack(b)

        self.run(_run())

    def test_good_ack_passes(self):
        async def _run():
            a, b = MemoryStream.pair()
            await a.write(ACK)
            await read_ack(b, timeout=1.0)

        self.run(_run())


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        key=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=24,
        ),
        payload=st.binary(max_size=32 * 1024),
        chunk=st.integers(min_value=1, max_value=8192),
    )
    def test_send_then_read_round_trips(self, key, payload, chunk):
        """Any header/payload/chunking combination survives the wire."""

        async def _run():
            a, b = MemoryStream.pair()
            await send_frame(a, {"op": "s0", "key": key}, payload, chunk_size=chunk)
            return await read_frame(b, chunk_size=chunk, timeout=5.0)

        header, got = asyncio.run(_run())
        assert header["key"] == key
        assert header["nbytes"] == len(payload)
        assert bytes(got) == payload
