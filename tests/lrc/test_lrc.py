"""Tests for the LRC substrate (code, decoder, repair scheme)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ContiguousPlacement, SIMICS_BANDWIDTH
from repro.gf import linear_combine
from repro.lrc import (
    LRCCode,
    LRCLocalRepair,
    UnrecoverableError,
    is_recoverable,
    lrc_recovery_equations,
)
from repro.repair import (
    RepairContext,
    execute_plan,
    initial_store_for,
    simulate_repair,
)
from repro.rs import SIMICS_DECODE


@pytest.fixture(scope="module")
def azure():
    return LRCCode(12, 2, 2)


def encoded(code, seed=0, size=128):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(code.n)]
    return [b for b in code.encode(data)]


class TestLRCCode:
    def test_azure_shape(self, azure):
        assert azure.width == 16
        assert azure.k == 4
        assert azure.group_size == 6
        assert azure.storage_overhead == pytest.approx(1 / 3)

    def test_groups(self, azure):
        assert azure.group(0) == list(range(6))
        assert azure.group(1) == list(range(6, 12))
        assert azure.local_parity(0) == 12
        assert azure.group_of(3) == 0
        assert azure.group_of(13) == 1
        assert azure.group_of(14) is None
        assert azure.is_global_parity(15)

    def test_local_parities_are_group_xor(self, azure):
        blocks = encoded(azure, seed=1)
        g0 = blocks[0].copy()
        for b in blocks[1:6]:
            g0 ^= b
        np.testing.assert_array_equal(blocks[12], g0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LRCCode(12, 5, 2)  # 5 does not divide 12
        with pytest.raises(ValueError):
            LRCCode(0, 1, 1)
        with pytest.raises(ValueError):
            LRCCode(250, 2, 10)

    def test_verify_stripe(self, azure):
        rng = np.random.default_rng(2)
        data = [rng.integers(0, 256, 64, dtype=np.uint8) for _ in range(12)]
        stripe = azure.encode_stripe(data)
        assert azure.verify_stripe(stripe)
        bad = stripe.get_payload(14).copy()
        bad[0] ^= 1
        stripe.set_payload(14, bad)
        assert not azure.verify_stripe(stripe)

    def test_group_bounds(self, azure):
        with pytest.raises(ValueError):
            azure.group(2)
        with pytest.raises(ValueError):
            azure.local_parity(-1)
        with pytest.raises(ValueError):
            azure.group_of(99)


class TestDecoder:
    def test_single_data_failure_is_local(self, azure):
        available = [b for b in range(16) if b != 4]
        [eq] = lrc_recovery_equations(azure, [4], available)
        assert len(eq.terms) == 6  # group-size helpers, not n=12
        assert eq.is_xor_only
        assert not eq.requires_matrix_build
        assert set(eq.helper_ids) == {0, 1, 2, 3, 5, 12}

    def test_local_parity_failure_is_local(self, azure):
        available = [b for b in range(16) if b != 13]
        [eq] = lrc_recovery_equations(azure, [13], available)
        assert set(eq.helper_ids) == set(range(6, 12))

    def test_global_parity_failure_uses_wide_equation(self, azure):
        available = [b for b in range(16) if b != 15]
        [eq] = lrc_recovery_equations(azure, [15], available)
        assert eq.requires_matrix_build
        blocks = encoded(azure, seed=3)
        got = linear_combine(
            [c for _, c in eq.terms], [blocks[h] for h, _ in eq.terms]
        )
        np.testing.assert_array_equal(got, blocks[15])

    @pytest.mark.parametrize("failed", [(0, 1), (0, 7), (0, 12), (0, 6, 14), (0, 1, 2)])
    def test_multi_failure_decodes(self, azure, failed):
        blocks = encoded(azure, seed=4)
        available = [b for b in range(16) if b not in failed]
        for eq in lrc_recovery_equations(azure, list(failed), available):
            got = linear_combine(
                [c for _, c in eq.terms], [blocks[h] for h, _ in eq.terms]
            )
            np.testing.assert_array_equal(got, blocks[eq.target])

    def test_recoverability_boundaries(self, azure):
        # three failures in one group: local parity + two globals suffice
        assert is_recoverable(azure, [0, 1, 2])
        # four failures in one group: only three constraints cover it
        assert not is_recoverable(azure, [0, 1, 2, 3])
        # local parity plus three group members: same deficit
        assert not is_recoverable(azure, [0, 1, 2, 12])
        # four failures split across groups: fine
        assert is_recoverable(azure, [0, 1, 6, 7])

    def test_unrecoverable_raises(self, azure):
        available = [b for b in range(16) if b not in (0, 1, 2, 3)]
        with pytest.raises(UnrecoverableError):
            lrc_recovery_equations(azure, [0, 1, 2, 3], available)

    def test_overlap_rejected(self, azure):
        with pytest.raises(ValueError):
            lrc_recovery_equations(azure, [0], [0, 1, 2])

    @given(st.integers(0, 2**31 - 1), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_random_recoverable_patterns_decode_exactly(self, seed, count):
        code = LRCCode(12, 2, 2)
        rng = np.random.default_rng(seed)
        failed = sorted(rng.choice(16, size=count, replace=False).tolist())
        if not is_recoverable(code, failed):
            return
        blocks = encoded(code, seed=seed, size=32)
        available = [b for b in range(16) if b not in failed]
        for eq in lrc_recovery_equations(code, failed, available):
            got = linear_combine(
                [c for _, c in eq.terms], [blocks[h] for h, _ in eq.terms]
            )
            np.testing.assert_array_equal(got, blocks[eq.target])


class TestLRCRepairScheme:
    def make_context(self, code, failed, block_size=256):
        # 2 blocks per rack keeps single-rack losses at 2 <= k = 4.
        cluster = Cluster.homogeneous(9, 4)
        placement = ContiguousPlacement(per_rack=2).place(
            cluster, code.n, code.k
        )
        return RepairContext(
            code=code,
            cluster=cluster,
            placement=placement,
            failed_blocks=tuple(failed),
            block_size=block_size,
            cost_model=SIMICS_DECODE,
        )

    @pytest.mark.parametrize("failed", [(2,), (9,), (12,), (15,), (0, 7), (3, 13)])
    def test_reconstructs(self, azure, failed):
        ctx = self.make_context(azure, failed)
        rng = np.random.default_rng(11)
        data = [rng.integers(0, 256, 256, dtype=np.uint8) for _ in range(12)]
        stripe = azure.encode_stripe(data)
        plan = LRCLocalRepair().plan(ctx)
        store = initial_store_for(stripe, ctx.placement, failed)
        result = execute_plan(plan, ctx.cluster, store)
        for b in failed:
            np.testing.assert_array_equal(result.recovered[b], stripe.get_payload(b))

    def test_single_failure_cheaper_than_rs(self, azure):
        """The LRC selling point: ~half the repair traffic of RS(12,4)."""
        from repro.repair import RPRScheme
        from repro.rs import get_code
        from repro.cluster import RPRPlacement

        lrc_ctx = self.make_context(azure, (2,), block_size=256_000_000)
        lrc = simulate_repair(LRCLocalRepair(), lrc_ctx, SIMICS_BANDWIDTH)

        rs_cluster = Cluster.homogeneous(9, 4)
        rs_placement = ContiguousPlacement(per_rack=2).place(rs_cluster, 12, 4)
        rs_ctx = RepairContext(
            code=get_code(12, 4),
            cluster=rs_cluster,
            placement=rs_placement,
            failed_blocks=(2,),
            block_size=256_000_000,
            cost_model=SIMICS_DECODE,
        )
        rs = simulate_repair(RPRScheme(), rs_ctx, SIMICS_BANDWIDTH)
        assert lrc.cross_rack_bytes < rs.cross_rack_bytes
        assert lrc.total_repair_time < rs.total_repair_time

    def test_requires_lrc_code(self):
        from repro.rs import get_code
        from repro.cluster import RPRPlacement

        cluster = Cluster.homogeneous(5, 8)
        placement = RPRPlacement().place(cluster, 12, 4)
        ctx = RepairContext(
            code=get_code(12, 4),
            cluster=cluster,
            placement=placement,
            failed_blocks=(1,),
            block_size=256,
            cost_model=SIMICS_DECODE,
        )
        with pytest.raises(TypeError):
            LRCLocalRepair().plan(ctx)


class TestExhaustiveRecoverability:
    def test_all_three_failure_patterns_recoverable(self, azure):
        """LRC(12,2,2) tolerates any 3 failures (its designed distance)."""
        for combo in itertools.combinations(range(16), 3):
            assert is_recoverable(azure, combo), combo

    def test_four_failure_census(self, azure):
        """Exhaustive 4-failure census.

        257 of C(16,4)=1820 patterns are unrecoverable.  252 are
        information-theoretic deficits (a local group loses more members
        than the constraints covering it: 4-in-group, 3-in-group plus a
        global, 2-in-group plus both globals).  The remaining 5 are
        2+2 splits across both groups that a *maximally recoverable*
        LRC (Azure's tuned coefficients) would decode but our generic
        Vandermonde globals cannot — a documented construction gap, not
        a decoder bug.
        """
        unrecoverable = []
        for combo in itertools.combinations(range(16), 4):
            if not is_recoverable(azure, combo):
                unrecoverable.append(combo)
        assert len(unrecoverable) == 257
        deficit = split_22 = 0
        for combo in unrecoverable:
            counts = []
            for j in range(2):
                members = set(azure.group(j)) | {azure.local_parity(j)}
                counts.append(len(set(combo) & members))
            globals_lost = sum(1 for b in combo if azure.is_global_parity(b))
            if max(counts) + globals_lost >= 4:
                deficit += 1
            elif counts == [2, 2]:
                split_22 += 1
            else:  # pragma: no cover - census is exhaustive
                pytest.fail(f"unexpected unrecoverable pattern {combo}")
        assert deficit == 252
        assert split_22 == 5


class TestLRCInStorageSystem:
    def test_end_to_end_object_store_with_lrc(self):
        """The StorageSystem facade is code-agnostic: LRC plugs in."""
        import numpy as np

        from repro.system import StorageSystem

        cluster = Cluster.homogeneous(9, 4)
        system = StorageSystem(
            cluster,
            LRCCode(12, 2, 2),
            block_size=128,
            placement_policy=ContiguousPlacement(per_rack=2),
            scheme=LRCLocalRepair(),
        )
        rng = np.random.default_rng(21)
        data = rng.integers(0, 256, 5000, dtype=np.uint8)
        system.put("obj", data)
        assert system.verify()
        system.fail_node(0)
        report = system.repair()
        assert system.verify()
        np.testing.assert_array_equal(system.get("obj"), data)
        if report.blocks_repaired:
            assert report.simulated_seconds > 0


class TestLRCMultiStripe:
    def test_node_rebuild_with_lrc(self):
        """The multistripe orchestration is code-agnostic: a node rebuild
        over an LRC store uses local-group repairs per stripe."""
        from repro.multistripe import StripeStore, repair_node_failure

        cluster = Cluster.homogeneous(9, 4)
        store = StripeStore.build(
            cluster,
            LRCCode(12, 2, 2),
            num_stripes=9,
            placement_policy=ContiguousPlacement(per_rack=2),
        )
        outcome = repair_node_failure(
            store, 0, LRCLocalRepair(), SIMICS_BANDWIDTH, rebuild="scatter"
        )
        assert outcome.makespan > 0
        assert len(outcome.plans) == outcome.failure.stripes_affected
        # local repair: each single-block loss touches ~group_size helpers,
        # so traffic stays well under the RS-style n blocks per stripe.
        per_stripe = outcome.total_cross_rack_bytes / (
            max(1, len(outcome.plans)) * 256_000_000
        )
        assert per_stripe <= 6
