"""Tests for traffic, repair-time and load-balance metrics."""

import pytest

from repro.cluster import Cluster, HierarchicalBandwidth, SIMICS_BANDWIDTH
from repro.experiments import build_simics_environment, context_for
from repro.metrics import (
    TimeBreakdown,
    TrafficLedger,
    coefficient_of_variation,
    imbalance_summary,
    max_mean_ratio,
    percent_reduction,
)
from repro.repair import RPRScheme, TraditionalRepair, simulate_repair
from repro.sim import JobGraph, SimulationEngine


@pytest.fixture
def engine():
    return SimulationEngine(
        Cluster.homogeneous(2, 2), HierarchicalBandwidth(intra=100.0, cross=10.0)
    )


class TestTrafficLedger:
    def test_split_and_per_node(self, engine):
        g = JobGraph()
        g.add_transfer("a", 0, 1, 100)  # intra
        g.add_transfer("b", 0, 2, 300)  # cross
        result = engine.run(g)
        ledger = TrafficLedger.from_sim(result, engine.cluster)
        assert ledger.intra_rack_bytes == 100
        assert ledger.cross_rack_bytes == 300
        assert ledger.total_bytes == 400
        assert ledger.uploaded_by_node[0] == 400
        assert ledger.downloaded_by_node[1] == 100
        assert ledger.downloaded_by_node[2] == 300
        assert ledger.cross_uploaded_by_rack == {0: 300}

    def test_cross_rack_blocks(self, engine):
        g = JobGraph()
        g.add_transfer("b", 0, 2, 300)
        ledger = TrafficLedger.from_sim(engine.run(g), engine.cluster)
        assert ledger.cross_rack_blocks(100) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            ledger.cross_rack_blocks(0)

    def test_empty_run(self, engine):
        ledger = TrafficLedger.from_sim(engine.run(JobGraph()), engine.cluster)
        assert ledger.total_bytes == 0


class TestPercentReduction:
    def test_basic(self):
        assert percent_reduction(100.0, 25.0) == pytest.approx(75.0)

    def test_no_reduction(self):
        assert percent_reduction(10.0, 10.0) == 0.0

    def test_negative_means_regression(self):
        assert percent_reduction(10.0, 20.0) == pytest.approx(-100.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            percent_reduction(0.0, 1.0)


class TestTimeBreakdown:
    def test_busy_times(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)  # 1 s
        g.add_compute("c", 1, 2.0, deps=["t"])
        breakdown = TimeBreakdown.from_sim(engine.run(g))
        assert breakdown.makespan == pytest.approx(3.0)
        assert breakdown.transfer_busy == pytest.approx(1.0)
        assert breakdown.compute_busy == pytest.approx(2.0)
        assert breakdown.parallelism == pytest.approx(1.0)

    def test_parallelism_above_one_when_overlapping(self, engine):
        g = JobGraph()
        g.add_transfer("a", 0, 2, 100)
        g.add_transfer("b", 1, 3, 100)
        breakdown = TimeBreakdown.from_sim(engine.run(g))
        assert breakdown.parallelism == pytest.approx(2.0)

    def test_empty(self, engine):
        breakdown = TimeBreakdown.from_sim(engine.run(JobGraph()))
        assert breakdown.parallelism == 0.0


class TestLoadBalance:
    def test_max_mean_ratio(self):
        assert max_mean_ratio([1, 1, 1, 1]) == pytest.approx(1.0)
        assert max_mean_ratio([4, 0, 0, 0]) == pytest.approx(4.0)

    def test_all_zero(self):
        assert max_mean_ratio([0, 0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            max_mean_ratio([])
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    def test_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == pytest.approx(0.0)
        assert coefficient_of_variation([0, 10]) == pytest.approx(1.0)

    def test_summary(self):
        summary = imbalance_summary({"a": 4.0, "b": 0.0})
        assert summary["participants"] == 2
        assert summary["max_mean_ratio"] == pytest.approx(2.0)

    def test_summary_empty(self):
        assert imbalance_summary({})["participants"] == 0

    def test_rpr_balances_better_than_traditional(self):
        """§3.1's load-balance claim, measured: the per-node download
        concentration of traditional repair exceeds RPR's."""
        env = build_simics_environment(12, 4)
        ctx = context_for(env, [1])
        tra = simulate_repair(TraditionalRepair(), ctx, SIMICS_BANDWIDTH)
        rpr = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        tra_ledger = TrafficLedger.from_sim(tra.sim, env.cluster)
        rpr_ledger = TrafficLedger.from_sim(rpr.sim, env.cluster)
        assert max(rpr_ledger.downloaded_by_node.values()) < max(
            tra_ledger.downloaded_by_node.values()
        )
