"""Tests for utilization/critical-path metrics (repro.metrics.utilization)."""

import pytest

from repro.cluster import Cluster, HierarchicalBandwidth
from repro.experiments import build_simics_environment, run_scheme
from repro.metrics import UtilizationSummary, critical_path_breakdown
from repro.repair import RPRScheme, TraditionalRepair
from repro.sim import JobGraph, RunTrace, SimulationEngine


@pytest.fixture
def engine():
    return SimulationEngine(
        Cluster.homogeneous(2, 2), HierarchicalBandwidth(intra=100.0, cross=10.0)
    )


class TestUtilizationSummary:
    def test_hand_built_graph(self, engine):
        g = JobGraph()
        g.add_transfer("a", 0, 1, 100)  # 1 s on n0:up and n1:down
        summary = UtilizationSummary.from_sim(engine.run(g), engine.cluster)
        assert summary.makespan == pytest.approx(1.0)
        assert summary.mean_port_utilization == pytest.approx(1.0)
        assert summary.peak_port_utilization == pytest.approx(1.0)
        # Rack 0 uploads the whole run; rack 1 (download only) never uploads.
        assert summary.rack_upload_idle[0] == pytest.approx(0.0)

    def test_empty_run(self, engine):
        summary = UtilizationSummary.from_sim(engine.run(JobGraph()), engine.cluster)
        assert summary.peak_resource == ""
        assert summary.mean_rack_upload_idle == 0.0

    def test_traditional_bottleneck_is_recovery_download(self):
        """§2.3 measured: the busiest resource of a traditional repair is
        the recovery node's download port, at near-total utilization."""
        env = build_simics_environment(12, 4)
        out = run_scheme(env, TraditionalRepair(), [1])
        summary = UtilizationSummary.from_trace(out.trace())
        assert summary.peak_resource.endswith(":down")
        assert summary.peak_port_utilization > 0.9

    def test_rpr_less_idle_than_traditional(self):
        env = build_simics_environment(12, 4)
        tra = UtilizationSummary.from_sim(
            run_scheme(env, TraditionalRepair(), [1]).sim, env.cluster
        )
        rpr = UtilizationSummary.from_sim(
            run_scheme(env, RPRScheme(), [1]).sim, env.cluster
        )
        assert rpr.mean_rack_upload_idle < tra.mean_rack_upload_idle


class TestCriticalPathBreakdown:
    def test_percentages_sum_to_hundred(self):
        env = build_simics_environment(8, 2)
        trace = run_scheme(env, RPRScheme(), [1]).trace()
        breakdown = critical_path_breakdown(trace)
        total_pct = (
            breakdown["cross_transfer_pct"]
            + breakdown["intra_transfer_pct"]
            + breakdown["compute_pct"]
            + breakdown["wait_pct"]
        )
        assert total_pct == pytest.approx(100.0, rel=1e-6)
        assert breakdown["makespan_s"] == pytest.approx(trace.makespan)

    def test_cross_transfers_dominate_at_paper_scale(self):
        """At 256 MB blocks over 0.1 Gb/s cross links, the critical path is
        mostly cross-rack transfer for every scheme — the paper's premise."""
        env = build_simics_environment(6, 2)
        for scheme in (TraditionalRepair(), RPRScheme()):
            trace = run_scheme(env, scheme, [1]).trace()
            assert critical_path_breakdown(trace)["cross_transfer_pct"] > 50.0

    def test_empty_trace(self):
        breakdown = critical_path_breakdown(RunTrace(makespan=0.0))
        assert breakdown["cross_transfer_pct"] == 0.0
        assert breakdown["wait_s"] == 0.0
