"""Utilization rollups on multi-block and degraded (faulted) traces.

``UtilizationSummary`` and ``critical_path_breakdown`` were written
against clean single-failure runs; these tests pin their behavior on the
two harder trace shapes: multi-block repairs (several recovery targets,
heavier port contention) and degraded repairs (aborted occupancy
intervals with zero bytes, re-planned attempts).
"""

import pytest

from repro.experiments import build_simics_environment, context_for, run_scheme
from repro.metrics import UtilizationSummary, critical_path_breakdown
from repro.repair import RPRScheme, simulate_repair, simulate_repair_with_faults
from repro.sim import FaultPlan, NodeDeath


@pytest.fixture(scope="module")
def degraded():
    env = build_simics_environment(8, 3)
    ctx = context_for(env, [2])
    horizon = simulate_repair(RPRScheme(), ctx, env.bandwidth).total_repair_time
    faults = FaultPlan(deaths=(NodeDeath(6, 0.5 * horizon),))
    return simulate_repair_with_faults(RPRScheme(), ctx, env.bandwidth, faults)


class TestMultiBlockRollups:
    @pytest.fixture(scope="class")
    def trace(self):
        env = build_simics_environment(8, 3)
        return run_scheme(env, RPRScheme(), [1, 2]).trace()

    def test_summary_bounds(self, trace):
        summary = UtilizationSummary.from_trace(trace)
        assert summary.makespan == pytest.approx(trace.makespan)
        assert 0.0 < summary.mean_port_utilization <= 1.0
        assert summary.mean_port_utilization <= summary.peak_port_utilization <= 1.0
        assert summary.peak_resource

    def test_rack_idle_fractions_are_fractions(self, trace):
        summary = UtilizationSummary.from_trace(trace)
        assert summary.rack_upload_idle
        for idle in summary.rack_upload_idle.values():
            assert 0.0 <= idle <= 1.0
        assert 0.0 <= summary.mean_rack_upload_idle <= 1.0

    def test_breakdown_sums_to_hundred(self, trace):
        breakdown = critical_path_breakdown(trace)
        total = (
            breakdown["cross_transfer_pct"]
            + breakdown["intra_transfer_pct"]
            + breakdown["compute_pct"]
            + breakdown["wait_pct"]
        )
        assert total == pytest.approx(100.0)


class TestDegradedRollups:
    def test_summary_on_every_attempt(self, degraded):
        for attempt in range(degraded.attempts):
            summary = UtilizationSummary.from_trace(degraded.trace(attempt))
            assert summary.makespan > 0
            assert 0.0 < summary.peak_port_utilization <= 1.0
            assert summary.peak_resource

    def test_from_sim_matches_from_trace(self, degraded):
        direct = UtilizationSummary.from_sim(degraded.sims[0], degraded.cluster)
        via_trace = UtilizationSummary.from_trace(degraded.trace(0))
        assert direct == via_trace

    def test_breakdown_covers_the_aborted_attempt(self, degraded):
        # The aborted attempt's path ends on a job unblocked by an abort;
        # attribution must still account for the whole makespan.
        breakdown = critical_path_breakdown(degraded.trace(0))
        assert breakdown["makespan_s"] == pytest.approx(
            degraded.trace(0).makespan
        )
        total = (
            breakdown["cross_transfer_pct"]
            + breakdown["intra_transfer_pct"]
            + breakdown["compute_pct"]
            + breakdown["wait_pct"]
        )
        assert total == pytest.approx(100.0)

    def test_aborted_bytes_stay_out_of_port_totals(self, degraded):
        # Attempt 0 aborts its R0 cross transfer: the sender's upload
        # port is busy until the death but carries zero bytes, so the
        # up-port totals equal exactly the completed-transfer ledgers.
        trace = degraded.trace(0)
        total_up = sum(r.nbytes for r in trace.resources if r.kind == "up")
        sim = degraded.sims[0]
        assert total_up == pytest.approx(
            sim.cross_rack_bytes() + sim.intra_rack_bytes()
        )

    def test_trace_requires_cluster(self, degraded):
        from dataclasses import replace

        stripped = replace(degraded, cluster=None)
        with pytest.raises(ValueError, match="cluster"):
            stripped.trace()
