"""Tests for node-failure workloads and the multi-stripe scheduler."""

import numpy as np
import pytest

from repro.cluster import Cluster, FlatPlacement, SIMICS_BANDWIDTH
from repro.multistripe import (
    PRIORITY_POLICIES,
    StripeStore,
    merge_plans,
    node_failure_contexts,
    order_repair_contexts,
    pick_replacement_node,
    repair_node_failure,
)
from repro.repair import (
    CARRepair,
    RPRScheme,
    TraditionalRepair,
    execute_plan,
    initial_store_for,
)
from repro.rs import MB, DecodeCostModel, get_code
from repro.workloads import encoded_stripe

COST = DecodeCostModel(xor_speed=1000 * MB, matrix_build_factor=4.0)


@pytest.fixture
def store():
    cluster = Cluster.homogeneous(5, 6)
    return StripeStore.build(cluster, get_code(6, 2), num_stripes=15)


class TestNodeFailureContexts:
    def test_one_context_per_lost_block(self, store):
        failure, contexts = node_failure_contexts(store, 0)
        assert failure.stripes_affected == len(contexts)
        assert failure.stripes_affected > 0

    def test_replacement_mode_single_target(self, store):
        _, contexts = node_failure_contexts(store, 0, mode="replacement")
        targets = {ctx.recovery_override[0][1] for ctx in contexts}
        assert len(targets) == 1
        target = targets.pop()
        assert store.cluster.rack_of(target) == store.cluster.rack_of(0)

    def test_scatter_mode_spreads_targets(self, store):
        _, contexts = node_failure_contexts(store, 0, mode="scatter")
        targets = {ctx.recovery_override[0][1] for ctx in contexts}
        assert len(targets) > 1
        for target in targets:
            assert store.cluster.rack_of(target) == store.cluster.rack_of(0)

    def test_unknown_mode(self, store):
        with pytest.raises(ValueError):
            node_failure_contexts(store, 0, mode="nope")

    def test_node_with_no_blocks(self):
        cluster = Cluster.homogeneous(5, 6)
        store = StripeStore.build(cluster, get_code(6, 2), 1, rotate=False)
        empty_nodes = [n for n, c in store.blocks_per_node().items() if c == 0]
        failure, contexts = node_failure_contexts(store, empty_nodes[0])
        assert contexts == []
        assert failure.stripes_affected == 0

    def test_replacement_not_holding_affected_stripes(self, store):
        replacement = pick_replacement_node(store, 0)
        for sid, _ in store.blocks_on_node(0):
            assert store.stripe(sid).placement.block_at(replacement) is None


class TestMergePlans:
    def plans_for(self, store, node, scheme):
        _, contexts = node_failure_contexts(
            store, node, block_size=1024, cost_model=COST
        )
        return [scheme.plan(ctx) for ctx in contexts]

    def test_merged_graph_contains_all_ops(self, store):
        plans = self.plans_for(store, 0, RPRScheme())
        graph = merge_plans(plans, COST)
        assert len(graph) == sum(len(p.ops) for p in plans)
        graph.validate()

    def test_sequential_chains_stripes(self, store):
        plans = self.plans_for(store, 0, RPRScheme())
        graph = merge_plans(plans, COST, sequential=True)
        graph.validate()
        # Every root op of stripe 1 depends on something from stripe 0.
        s1_roots = [
            j
            for jid, j in graph.jobs.items()
            if jid.startswith("s1:")
            and all(not d.startswith("s1:") for d in j.deps)
        ]
        assert s1_roots
        for job in s1_roots:
            assert any(d.startswith("s0:") for d in job.deps)


class TestRepairNodeFailure:
    @pytest.mark.parametrize(
        "scheme", [TraditionalRepair(), RPRScheme()], ids=lambda s: s.name
    )
    def test_outcome_populated(self, store, scheme):
        outcome = repair_node_failure(store, 0, scheme, SIMICS_BANDWIDTH)
        assert outcome.makespan > 0
        assert outcome.total_cross_rack_bytes > 0
        assert len(outcome.plans) == outcome.failure.stripes_affected

    @pytest.mark.parametrize(
        "scheme", [TraditionalRepair(), RPRScheme()], ids=lambda s: s.name
    )
    def test_byte_totals_are_exact_ints(self, store, scheme):
        """Sim-side byte totals are integral and equal the per-plan sums.

        Every send moves exactly ``block_size`` bytes, so the aggregate is
        an exact integer multiple — a float total would mean the ledger
        drifted from the executor's int accounting.
        """
        outcome = repair_node_failure(store, 0, scheme, SIMICS_BANDWIDTH)
        assert type(outcome.total_cross_rack_bytes) is int
        assert type(outcome.total_intra_rack_bytes) is int
        expected_cross = sum(
            plan.block_size
            for plan in outcome.plans
            for op in plan.sends()
            if not store.cluster.same_rack(op.src, op.dst)
        )
        expected_intra = sum(
            plan.block_size
            for plan in outcome.plans
            for op in plan.sends()
            if store.cluster.same_rack(op.src, op.dst)
        )
        assert outcome.total_cross_rack_bytes == expected_cross
        assert outcome.total_intra_rack_bytes == expected_intra

    def test_parallel_never_slower_than_sequential(self, store):
        seq = repair_node_failure(
            store, 0, RPRScheme(), SIMICS_BANDWIDTH, mode="sequential"
        )
        par = repair_node_failure(
            store, 0, RPRScheme(), SIMICS_BANDWIDTH, mode="parallel"
        )
        assert par.makespan <= seq.makespan + 1e-9
        assert par.total_cross_rack_bytes == pytest.approx(
            seq.total_cross_rack_bytes
        )

    def test_scatter_faster_than_replacement_in_parallel(self, store):
        """Spreading rebuild targets removes the replacement node's
        download-port bottleneck."""
        single = repair_node_failure(
            store, 0, RPRScheme(), SIMICS_BANDWIDTH, rebuild="replacement"
        )
        scatter = repair_node_failure(
            store, 0, RPRScheme(), SIMICS_BANDWIDTH, rebuild="scatter"
        )
        assert scatter.makespan < single.makespan

    def test_rpr_beats_traditional_on_node_rebuild(self, store):
        tra = repair_node_failure(store, 0, TraditionalRepair(), SIMICS_BANDWIDTH)
        rpr = repair_node_failure(store, 0, RPRScheme(), SIMICS_BANDWIDTH)
        assert rpr.makespan < tra.makespan
        assert rpr.total_cross_rack_bytes < tra.total_cross_rack_bytes

    def test_balance_reduces_imbalance_on_flat_store(self):
        cluster = Cluster.homogeneous(10, 4)
        store = StripeStore.build(
            cluster, get_code(6, 2), 30, placement_policy=FlatPlacement()
        )
        plain = repair_node_failure(
            store, 0, CARRepair(), SIMICS_BANDWIDTH, rebuild="scatter"
        )
        balanced = repair_node_failure(
            store, 0, CARRepair(), SIMICS_BANDWIDTH, rebuild="scatter", balance=True
        )
        assert (
            balanced.rack_upload_imbalance["max_mean_ratio"]
            <= plain.rack_upload_imbalance["max_mean_ratio"]
        )
        assert balanced.total_cross_rack_bytes == pytest.approx(
            plain.total_cross_rack_bytes
        )

    def test_empty_node_rebuild(self):
        cluster = Cluster.homogeneous(5, 6)
        store = StripeStore.build(cluster, get_code(6, 2), 1, rotate=False)
        empty = [n for n, c in store.blocks_per_node().items() if c == 0][0]
        outcome = repair_node_failure(store, empty, RPRScheme(), SIMICS_BANDWIDTH)
        assert outcome.makespan == 0.0
        assert outcome.plans == []

    def test_unknown_mode(self, store):
        with pytest.raises(ValueError):
            repair_node_failure(
                store, 0, RPRScheme(), SIMICS_BANDWIDTH, mode="warp"
            )

    def test_byte_level_verification_of_every_stripe_plan(self, store):
        """Each per-stripe plan must reconstruct its stripe's lost block."""
        failure, contexts = node_failure_contexts(
            store, 0, block_size=256, cost_model=COST
        )
        for ctx, (stripe_id, block_id) in zip(contexts, failure.lost):
            stored = store.stripe(stripe_id)
            stripe = encoded_stripe(stored.code, 256, seed=stripe_id)
            plan = RPRScheme().plan(ctx)
            payload_store = initial_store_for(
                stripe, stored.placement, [block_id]
            )
            result = execute_plan(plan, store.cluster, payload_store)
            np.testing.assert_array_equal(
                result.recovered[block_id], stripe.get_payload(block_id)
            )


class TestRackFailure:
    @pytest.fixture
    def store(self):
        cluster = Cluster.homogeneous(5, 6)
        return StripeStore.build(cluster, get_code(6, 2), num_stripes=15)

    def test_contexts_cover_all_resident_blocks(self, store):
        from repro.multistripe import rack_failure_contexts

        failure, contexts = rack_failure_contexts(store, 0, block_size=1024, cost_model=COST)
        rack_nodes = set(store.cluster.nodes_in_rack(0))
        expected = sum(
            1
            for stored in store.stripes
            for node in stored.placement.block_to_node.values()
            if node in rack_nodes
        )
        assert failure.stripes_affected == expected
        assert sum(len(ctx.failed_blocks) for ctx in contexts) == expected

    def test_targets_avoid_failed_rack(self, store):
        from repro.multistripe import rack_failure_contexts

        _, contexts = rack_failure_contexts(store, 0, block_size=1024, cost_model=COST)
        for ctx in contexts:
            for _block, node in ctx.recovery_override:
                assert store.cluster.rack_of(node) != 0

    def test_repair_rack_failure_outcome(self, store):
        from repro.multistripe import repair_rack_failure

        tra = repair_rack_failure(store, 0, TraditionalRepair(), SIMICS_BANDWIDTH)
        rpr = repair_rack_failure(store, 0, RPRScheme(), SIMICS_BANDWIDTH)
        assert rpr.makespan < tra.makespan
        assert rpr.total_cross_rack_bytes <= tra.total_cross_rack_bytes

    def test_rack_failure_plans_reconstruct_bytes(self, store):
        from repro.multistripe import rack_failure_contexts

        _, contexts = rack_failure_contexts(store, 1, block_size=256, cost_model=COST)
        for ctx in contexts[:5]:
            sid = next(
                s.stripe_id
                for s in store.stripes
                if s.placement is ctx.placement
            )
            stripe = encoded_stripe(ctx.code, 256, seed=sid)
            plan = RPRScheme().plan(ctx)
            payload_store = initial_store_for(
                stripe, ctx.placement, ctx.failed_blocks
            )
            result = execute_plan(plan, store.cluster, payload_store)
            for b in ctx.failed_blocks:
                np.testing.assert_array_equal(
                    result.recovered[b], stripe.get_payload(b)
                )

    def test_empty_rack(self):
        from repro.multistripe import rack_failure_contexts

        cluster = Cluster.homogeneous(5, 6)
        store = StripeStore.build(cluster, get_code(6, 2), 1, rotate=False)
        used_racks = {store.cluster.rack_of(n)
                      for n in store.stripe(0).placement.block_to_node.values()}
        empty = next(r for r in cluster.rack_ids() if r not in used_racks)
        failure, contexts = rack_failure_contexts(store, empty)
        assert contexts == []
        assert failure.stripes_affected == 0

    def test_unknown_mode_rejected(self, store):
        from repro.multistripe import repair_rack_failure

        with pytest.raises(ValueError):
            repair_rack_failure(store, 0, RPRScheme(), SIMICS_BANDWIDTH, mode="warp")


class _Ctx:
    """Minimal stand-in: ordering only ever reads ``failed_blocks``."""

    def __init__(self, tag, nfailed):
        self.tag = tag
        self.failed_blocks = tuple(range(nfailed))

    def __repr__(self):
        return f"_Ctx({self.tag}, {len(self.failed_blocks)})"


class TestOrderRepairContexts:
    """The scheduler-priority half of the QoS plane: which stripe's
    repair runs first (the store coordinator uses most-at-risk)."""

    def test_arrival_keeps_the_given_order(self):
        contexts = [_Ctx("a", 1), _Ctx("b", 2), _Ctx("c", 1)]
        assert order_repair_contexts(contexts, "arrival") == contexts

    def test_most_at_risk_puts_the_closest_to_loss_first(self):
        a, b, c, d = _Ctx("a", 1), _Ctx("b", 3), _Ctx("c", 2), _Ctx("d", 1)
        ordered = order_repair_contexts([a, b, c, d], "most-at-risk")
        assert ordered == [b, c, a, d]

    def test_most_at_risk_is_stable_within_a_risk_level(self):
        contexts = [_Ctx(i, 2) for i in range(5)]
        assert order_repair_contexts(contexts, "most-at-risk") == contexts

    def test_deadline_sorts_earliest_first_missing_last(self):
        a, b, c = _Ctx("a", 1), _Ctx("b", 1), _Ctx("c", 1)
        ordered = order_repair_contexts(
            [a, b, c], "deadline", deadlines={0: 30.0, 2: 5.0}
        )
        assert ordered == [c, a, b]  # b has no deadline: it waits

    def test_unknown_policy_is_refused_and_all_known_ones_work(self):
        contexts = [_Ctx("a", 1)]
        with pytest.raises(ValueError, match="unknown priority policy"):
            order_repair_contexts(contexts, "loudest-operator")
        for policy in PRIORITY_POLICIES:
            assert order_repair_contexts(contexts, policy) == contexts

    def test_input_is_not_mutated(self):
        contexts = [_Ctx("a", 1), _Ctx("b", 3)]
        snapshot = list(contexts)
        order_repair_contexts(contexts, "most-at-risk")
        assert contexts == snapshot
