"""Byte-level store payloads: batched encode and node rebuild."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.multistripe import (
    StripeStore,
    encode_store_payloads,
    rebuild_node_payloads,
)
from repro.rs import get_code
from repro.rs.decode import decode_blocks


@pytest.fixture
def store():
    return StripeStore.build(Cluster.homogeneous(5, 8), get_code(6, 2), 40)


def test_encode_store_payloads_shape_and_determinism(store):
    payloads = encode_store_payloads(store, 512, seed=9)
    assert payloads.shape == (40, 8, 512)
    again = encode_store_payloads(store, 512, seed=9)
    assert np.array_equal(payloads, again)
    other = encode_store_payloads(store, 512, seed=10)
    assert not np.array_equal(payloads, other)


def test_every_stripe_is_a_valid_codeword(store):
    code = store.stripes[0].code
    payloads = encode_store_payloads(store, 256)
    for sid in (0, 17, 39):
        expect = code.encode([payloads[sid, j] for j in range(code.n)])
        for bid in range(code.width):
            assert np.array_equal(payloads[sid, bid], expect[bid])


def test_rebuild_recovers_exact_lost_bytes(store):
    code = store.stripes[0].code
    payloads = encode_store_payloads(store, 1024, seed=4)
    lost = store.blocks_on_node(0)
    rebuilt = rebuild_node_payloads(store, 0, payloads)
    assert set(rebuilt) == {sid for sid, _ in lost}
    for sid, bid in lost:
        assert np.array_equal(rebuilt[sid], payloads[sid, bid])
        # Cross-check against the per-stripe decode oracle.
        avail = {b: payloads[sid, b] for b in range(code.width) if b != bid}
        expect = decode_blocks(code, avail, [bid])[bid]
        assert np.array_equal(rebuilt[sid], expect)


def test_rebuild_of_uninvolved_node_is_empty():
    # A 1-stripe store touches width=8 of the 40 nodes; pick one outside.
    store = StripeStore.build(Cluster.homogeneous(5, 8), get_code(6, 2), 1)
    payloads = encode_store_payloads(store, 64)
    used = set(store.stripes[0].placement.block_to_node.values())
    spare = next(n for n in store.cluster.node_ids() if n not in used)
    assert rebuild_node_payloads(store, spare, payloads) == {}


def test_payload_shape_validated(store):
    payloads = encode_store_payloads(store, 128)
    with pytest.raises(ValueError, match="does not match store"):
        rebuild_node_payloads(store, 0, payloads[:10])
