"""Tests for the stripe store and placement rotation."""

import pytest

from repro.cluster import Cluster, FlatPlacement, PlacementError, Rack, Node
from repro.multistripe import StripeStore, rotate_placement
from repro.rs import get_code


@pytest.fixture
def cluster():
    return Cluster.homogeneous(5, 6)


class TestRotatePlacement:
    def test_identity_rotation(self, cluster):
        store = StripeStore.build(cluster, get_code(6, 2), 1, rotate=False)
        base = store.stripe(0).placement
        rotated = rotate_placement(cluster, base, rack_offset=0)
        assert rotated.block_to_node == dict(base.block_to_node)

    def test_full_cycle_is_identity(self, cluster):
        store = StripeStore.build(cluster, get_code(6, 2), 1, rotate=False)
        base = store.stripe(0).placement
        rotated = rotate_placement(cluster, base, rack_offset=cluster.num_racks)
        assert rotated.block_to_node == dict(base.block_to_node)

    def test_rack_shift(self, cluster):
        store = StripeStore.build(cluster, get_code(6, 2), 1, rotate=False)
        base = store.stripe(0).placement
        rotated = rotate_placement(cluster, base, rack_offset=2)
        for block in range(8):
            old_rack = base.rack_of_block(cluster, block)
            new_rack = rotated.rack_of_block(cluster, block)
            assert new_rack == (old_rack + 2) % cluster.num_racks

    def test_slot_shift_changes_nodes_not_racks(self, cluster):
        store = StripeStore.build(cluster, get_code(6, 2), 1, rotate=False)
        base = store.stripe(0).placement
        rotated = rotate_placement(cluster, base, rack_offset=0, slot_offset=1)
        for block in range(8):
            assert rotated.rack_of_block(cluster, block) == base.rack_of_block(
                cluster, block
            )
            assert rotated.node_of(block) != base.node_of(block)

    def test_heterogeneous_racks_rejected(self):
        cluster = Cluster(
            [
                Rack(0, nodes=[Node(0, 0), Node(1, 0)]),
                Rack(1, nodes=[Node(2, 1)]),
            ]
        )
        from repro.cluster import Placement

        placement = Placement(n=2, k=0, block_to_node={0: 0, 1: 2})
        with pytest.raises(PlacementError):
            rotate_placement(cluster, placement, 1)


class TestStripeStore:
    def test_build_shapes(self, cluster):
        store = StripeStore.build(cluster, get_code(6, 2), 12)
        assert len(store) == 12
        assert [s.stripe_id for s in store] == list(range(12))

    def test_rotation_declusters(self, cluster):
        """Enough rotated stripes load every node equally."""
        # 30 stripes over 5 racks x 6 slots: each node gets 8 blocks
        # (stripe width 8, 30 * 8 / 30 nodes).
        store = StripeStore.build(cluster, get_code(6, 2), 30)
        counts = store.blocks_per_node()
        assert set(counts.values()) == {8}

    def test_no_rotation_concentrates(self, cluster):
        store = StripeStore.build(cluster, get_code(6, 2), 10, rotate=False)
        counts = store.blocks_per_node()
        assert 0 in counts.values()
        assert max(counts.values()) == 10

    def test_blocks_on_node(self, cluster):
        store = StripeStore.build(cluster, get_code(6, 2), 5)
        found = store.blocks_on_node(0)
        for stripe_id, block_id in found:
            assert store.stripe(stripe_id).placement.node_of(block_id) == 0

    def test_blocks_on_unknown_node(self, cluster):
        store = StripeStore.build(cluster, get_code(6, 2), 2)
        with pytest.raises(KeyError):
            store.blocks_on_node(999)

    def test_flat_placement_store(self):
        cluster = Cluster.homogeneous(10, 3)
        store = StripeStore.build(
            cluster, get_code(6, 2), 4, placement_policy=FlatPlacement()
        )
        placement = store.stripe(0).placement
        assert all(v == 1 for v in placement.rack_histogram(cluster).values())

    def test_invalid_count(self, cluster):
        with pytest.raises(ValueError):
            StripeStore.build(cluster, get_code(6, 2), 0)

    def test_stripe_lookup_error(self, cluster):
        store = StripeStore.build(cluster, get_code(6, 2), 2)
        with pytest.raises(KeyError):
            store.stripe(9)
