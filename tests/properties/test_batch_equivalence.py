"""Batched kernels must agree byte-for-byte with the per-stripe paths.

For random matrices, shapes, and coefficient patterns — including the
degenerate ones the fast paths special-case (all-XOR rows, zero rows,
zero coefficients, unit coefficients) — ``gf_matmul_blocks``,
``encode_many`` and ``decode_many`` must produce exactly the bytes the
scalar kernels produce one stripe at a time.  Equality is exact: GF
arithmetic has no rounding, so any mismatch is a real bug.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import gf_matmul_blocks, linear_combine
from repro.rs import get_code
from repro.rs.decode import decode_blocks


@st.composite
def matmul_cases(draw):
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    r = draw(st.integers(1, 5))
    c = draw(st.integers(1, 6))
    stripes = draw(st.integers(1, 7))
    block = draw(st.integers(1, 300))
    # Bias coefficients toward the special-cased values 0 and 1 so the
    # XOR-only and skip paths are exercised constantly, and force some
    # all-zero / all-ones rows outright.
    matrix = rng.choice(
        np.array([0, 0, 1, 1, 2, 3, 91, 250], dtype=np.uint8), size=(r, c)
    )
    if r >= 2:
        matrix[0] = 0  # all-zero row
        matrix[1] = 1  # pure-XOR row (the eq. (2) parity shape)
    blocks = [
        rng.integers(0, 256, (stripes, block), dtype=np.uint8) for _ in range(c)
    ]
    return matrix, blocks


@given(matmul_cases())
@settings(max_examples=40, deadline=None)
def test_gf_matmul_blocks_matches_linear_combine(case):
    matrix, blocks = case
    got = gf_matmul_blocks(matrix, blocks)
    for i, row in enumerate(matrix):
        for s in range(blocks[0].shape[0]):
            expect = linear_combine(
                [int(x) for x in row], [b[s] for b in blocks]
            )
            assert np.array_equal(got[i, s], expect), (i, s)


@given(
    seed=st.integers(0, 2**31 - 1),
    stripes=st.integers(1, 9),
    block=st.integers(1, 257),
)
@settings(max_examples=25, deadline=None)
def test_encode_many_matches_per_stripe(seed, stripes, block):
    code = get_code(6, 2)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (stripes, code.n, block), dtype=np.uint8)
    batched = code.encode_many(data)
    assert batched.shape == (stripes, code.width, block)
    for s in range(stripes):
        expect = code.encode([data[s, j] for j in range(code.n)])
        for bid in range(code.width):
            assert np.array_equal(batched[s, bid], expect[bid]), (s, bid)


@given(
    seed=st.integers(0, 2**31 - 1),
    stripes=st.integers(1, 6),
    block=st.integers(1, 130),
    n=st.sampled_from([4, 6]),
    k=st.sampled_from([2, 3]),
)
@settings(max_examples=20, deadline=None)
def test_decode_many_matches_per_stripe(seed, stripes, block, n, k):
    code = get_code(n, k)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, (stripes, code.n, block), dtype=np.uint8)
    encoded = code.encode_many(data)
    failed = sorted(
        rng.choice(code.width, size=rng.integers(1, k + 1), replace=False).tolist()
    )
    available = {
        b: np.ascontiguousarray(encoded[:, b, :])
        for b in range(code.width)
        if b not in failed
    }
    batched = code.decode_many(available, failed)
    assert sorted(batched) == failed
    for s in range(stripes):
        expect = decode_blocks(
            code, {b: available[b][s] for b in available}, failed
        )
        for bid in failed:
            assert np.array_equal(batched[bid][s], expect[bid]), (s, bid)
            assert np.array_equal(batched[bid][s], data[s, bid] if bid < n else encoded[s, bid])
