"""Property fuzzing of the discrete-event engine with random job DAGs.

Generates random layered DAGs of transfers and computes, runs them, and
checks structural invariants that must hold for *any* graph:

* no resource (port/CPU) ever carries two jobs at once;
* every job starts at or after all of its dependencies' ends;
* the makespan is at least the critical-path lower bound and at most
  the serialised sum of all durations;
* total busy time per resource never exceeds the makespan.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, HierarchicalBandwidth
from repro.sim import EventKind, JobGraph, SimulationEngine

CLUSTER = Cluster.homogeneous(4, 4)
BW = HierarchicalBandwidth(intra=100.0, cross=10.0)
ENGINE = SimulationEngine(CLUSTER, BW)
NODES = CLUSTER.num_nodes


@st.composite
def random_graphs(draw):
    """Layered DAGs: jobs may only depend on earlier jobs."""
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    count = draw(st.integers(1, 25))
    graph = JobGraph()
    ids = []
    durations = {}
    for i in range(count):
        jid = f"j{i}"
        max_deps = min(len(ids), 3)
        dep_count = int(rng.integers(0, max_deps + 1))
        deps = list(
            rng.choice(ids, size=dep_count, replace=False)
        ) if dep_count else []
        if rng.random() < 0.6:
            src = int(rng.integers(0, NODES))
            dst = int(rng.integers(0, NODES - 1))
            if dst >= src:
                dst += 1
            nbytes = float(rng.integers(1, 500))
            graph.add_transfer(jid, src, dst, nbytes, deps=deps)
            durations[jid] = nbytes / BW.rate(CLUSTER, src, dst)
        else:
            seconds = float(rng.integers(0, 50)) / 10.0
            graph.add_compute(jid, int(rng.integers(0, NODES)), seconds, deps=deps)
            durations[jid] = seconds
        ids.append(jid)
    return graph, durations


def resource_intervals(graph, result):
    intervals: dict[tuple, list[tuple[float, float]]] = {}
    for jid, job in graph.jobs.items():
        timing = result.timings[jid]
        if hasattr(job, "src"):
            keys = [("up", job.src), ("down", job.dst)]
        else:
            keys = [("cpu", job.node)]
        for key in keys:
            intervals.setdefault(key, []).append((timing.start, timing.end))
    return intervals


class TestEngineFuzz:
    @given(random_graphs())
    @settings(max_examples=80, deadline=None)
    def test_invariants(self, case):
        graph, durations = case
        result = ENGINE.run(graph)

        # every job ran with its exact duration
        for jid, timing in result.timings.items():
            assert timing.end - timing.start == pytest.approx(durations[jid])

        # dependencies respected
        for jid, job in graph.jobs.items():
            for dep in job.deps:
                assert (
                    result.timings[jid].start
                    >= result.timings[dep].end - 1e-9
                )

        # no resource carries overlapping jobs
        for key, spans in resource_intervals(graph, result).items():
            spans = sorted(spans)
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-9, (key, spans)

        # makespan bounds
        total = sum(durations.values())
        # critical path over declared deps only (resources can only delay)
        longest: dict[str, float] = {}
        for jid, job in graph.jobs.items():  # insertion order is topological
            longest[jid] = durations[jid] + max(
                (longest[d] for d in job.deps), default=0.0
            )
        critical = max(longest.values(), default=0.0)
        assert result.makespan >= critical - 1e-9
        assert result.makespan <= total + 1e-9

        # trace completeness: one start and one end event per job
        starts = [e for e in result.events if e.kind.endswith("start")]
        ends = [
            e
            for e in result.events
            if e.kind in (EventKind.TRANSFER_END, EventKind.COMPUTE_END)
        ]
        assert len(starts) == len(graph.jobs)
        assert len(ends) == len(graph.jobs)
