"""All GF multiply kernels must agree byte-for-byte, serial or parallel.

The split-table kernels (``split16``, ``nibble4``) exist purely for
speed: every byte they produce must match the ``translate`` baseline
across random coefficient matrices, block counts, and block sizes that
don't align to tiles, gather chunks, or uint16 pairs (odd lengths hit
split16's scalar tail).  Likewise the multicore codec must be a pure
scheduling change: ``encode_many_parallel``/``decode_many_parallel``
shard stripes across threads but the bytes that land in the arena must
be exactly the serial kernels' bytes for any worker count.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import gf_matmul_blocks
from repro.gf.batch import adaptive_tile
from repro.gf.splittable import KERNELS, mul_into, mul_xor_into
from repro.rs import get_code

#: Sizes chosen to straddle the alignment boundaries the kernels care
#: about: the uint16 pair split (odd), the 64 Ki gather chunks, and the
#: adaptive tile edges.
_AWKWARD_SIZES = [1, 2, 3, 255, 4096, 4097, 65535, 65536 * 2 + 1]


@st.composite
def kernel_cases(draw):
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    r = draw(st.integers(1, 4))
    c = draw(st.integers(1, 5))
    size = draw(
        st.one_of(st.sampled_from(_AWKWARD_SIZES), st.integers(1, 70000))
    )
    matrix = rng.choice(
        np.array([0, 0, 1, 1, 2, 37, 91, 250], dtype=np.uint8), size=(r, c)
    )
    blocks = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(c)]
    return matrix, blocks


@given(kernel_cases())
@settings(max_examples=30, deadline=None)
def test_all_kernels_byte_identical(case):
    matrix, blocks = case
    reference = gf_matmul_blocks(matrix, blocks, kernel="translate")
    for name in KERNELS:
        if name == "translate":
            continue
        got = gf_matmul_blocks(matrix, blocks, kernel=name)
        assert np.array_equal(got, reference), name


@given(
    seed=st.integers(0, 2**31 - 1),
    coeff=st.integers(0, 255),
    size=st.sampled_from(_AWKWARD_SIZES),
)
@settings(max_examples=25, deadline=None)
def test_scalar_primitives_agree_across_kernels(seed, coeff, size):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 256, size, dtype=np.uint8)
    acc0 = rng.integers(0, 256, size, dtype=np.uint8)
    ref_mul = mul_into(coeff, src, np.empty(size, np.uint8), kernel="translate")
    ref_acc = mul_xor_into(coeff, src, acc0.copy(), kernel="translate")
    for name in KERNELS:
        got_mul = mul_into(coeff, src, np.empty(size, np.uint8), kernel=name)
        got_acc = mul_xor_into(coeff, src, acc0.copy(), kernel=name)
        assert np.array_equal(got_mul, ref_mul), name
        assert np.array_equal(got_acc, ref_acc), name


def test_adaptive_tile_shrinks_with_working_set():
    huge = 1 << 40
    skinny = adaptive_tile(2, 1, huge)
    wide = adaptive_tile(30, 10, huge)
    assert wide <= skinny
    for tile in (skinny, wide):
        assert tile % 4096 == 0
    # Small inputs run untiled.
    assert adaptive_tile(6, 2, 1000) == 1000


class TestParallelCodecEquivalence:
    def test_encode_parallel_matches_serial_any_workers(self):
        code = get_code(6, 2)
        rng = np.random.default_rng(11)
        # 13 stripes over 4 workers: uneven shards, odd block size.
        data = rng.integers(0, 256, (13, code.n, 4097), dtype=np.uint8)
        serial = code.encode_many(data)
        for workers in (1, 2, 3, 4, 8):
            arena = np.empty((13, code.width, 4097), dtype=np.uint8)
            got = code.encode_many_parallel(data, out=arena, workers=workers)
            assert got is arena
            assert np.array_equal(got, serial), workers

    def test_decode_parallel_matches_serial_any_workers(self):
        code = get_code(6, 3)
        rng = np.random.default_rng(12)
        data = rng.integers(0, 256, (11, code.n, 2049), dtype=np.uint8)
        encoded = code.encode_many(data)
        failed = [0, code.n + 1]
        available = {
            b: np.ascontiguousarray(encoded[:, b, :])
            for b in range(code.width)
            if b not in failed
        }
        serial = code.decode_many(available, failed)
        for workers in (1, 2, 3, 4, 8):
            got = code.decode_many_parallel(available, failed, workers=workers)
            assert sorted(got) == sorted(serial)
            for target in serial:
                assert np.array_equal(got[target], serial[target]), (
                    workers,
                    target,
                )

    def test_single_stripe_falls_back_to_serial(self):
        code = get_code(4, 2)
        rng = np.random.default_rng(13)
        data = rng.integers(0, 256, (1, code.n, 333), dtype=np.uint8)
        assert np.array_equal(
            code.encode_many_parallel(data, workers=4), code.encode_many(data)
        )

    def test_matmul_accepts_row_contiguous_out_slices(self):
        """The decode shard write pattern: rows contiguous, stack not."""
        code = get_code(6, 2)
        rng = np.random.default_rng(14)
        blocks = [
            rng.integers(0, 256, (9, 515), dtype=np.uint8) for _ in range(6)
        ]
        matrix = code.generator[code.n :]
        whole = gf_matmul_blocks(matrix, blocks)
        arena = np.empty((code.k, 9, 515), dtype=np.uint8)
        for lo, hi in ((0, 4), (4, 9)):
            gf_matmul_blocks(
                matrix, [b[lo:hi] for b in blocks], out=arena[:, lo:hi]
            )
        assert np.array_equal(arena, whole)
