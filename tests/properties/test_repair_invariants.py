"""Property-based tests for the library's central invariants.

1. Every scheme's plan, executed on real bytes, reconstructs every failed
   block bit-exactly — for random codes, placements, and failure sets.
2. Concrete-execution traffic equals simulated traffic (the plan is the
   single source of truth).
3. Under the uniform hierarchical bandwidth model, RPR's simulated repair
   time is never worse than CAR's, and never worse than traditional's.
4. Partial decoding never increases cross-rack traffic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    Cluster,
    ContiguousPlacement,
    HierarchicalBandwidth,
    RPRPlacement,
    SIMICS_BANDWIDTH,
)
from repro.repair import (
    CARRepair,
    RepairContext,
    RPRScheme,
    TraditionalRepair,
    execute_plan,
    initial_store_for,
    simulate_repair,
)
from repro.rs import MB, DecodeCostModel, RSCode

BLOCK = 256
COST = DecodeCostModel(xor_speed=1000 * MB, matrix_build_factor=4.0)

codes = st.sampled_from([(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4), (10, 4), (9, 3)])
placements = st.sampled_from(["rpr", "contiguous"])
constructions = st.sampled_from(["vandermonde", "cauchy"])

_CODE_CACHE: dict = {}


def cached_code(n, k, matrix):
    key = (n, k, matrix)
    if key not in _CODE_CACHE:
        _CODE_CACHE[key] = RSCode(n, k, matrix=matrix)
    return _CODE_CACHE[key]


@st.composite
def repair_scenarios(draw, multi=True):
    n, k = draw(codes)
    width = n + k
    max_failures = k if multi else 1
    l = draw(st.integers(1, max_failures))
    failed = tuple(
        sorted(draw(st.sets(st.integers(0, width - 1), min_size=l, max_size=l)))
    )
    placement_kind = draw(placements)
    matrix = draw(constructions)
    seed = draw(st.integers(0, 2**31 - 1))
    return n, k, failed, placement_kind, seed, matrix


def build_context(n, k, failed, placement_kind, matrix="vandermonde"):
    racks = -(-(n + k) // k) + 1
    cluster = Cluster.homogeneous(racks, 2 * k + 1)
    policy = RPRPlacement() if placement_kind == "rpr" else ContiguousPlacement()
    placement = policy.place(cluster, n, k)
    return RepairContext(
        code=cached_code(n, k, matrix),
        cluster=cluster,
        placement=placement,
        failed_blocks=failed,
        block_size=BLOCK,
        cost_model=COST,
    )


def encode_stripe(ctx, seed):
    rng = np.random.default_rng(seed)
    data = [
        rng.integers(0, 256, ctx.block_size, dtype=np.uint8)
        for _ in range(ctx.code.n)
    ]
    return ctx.code.encode_stripe(data)


class TestReconstructionProperty:
    @given(repair_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_traditional_reconstructs_any_failure(self, scenario):
        self._check(TraditionalRepair(), scenario)

    @given(repair_scenarios())
    @settings(max_examples=60, deadline=None)
    def test_rpr_reconstructs_any_failure(self, scenario):
        self._check(RPRScheme(), scenario)

    @given(repair_scenarios(multi=False))
    @settings(max_examples=60, deadline=None)
    def test_car_reconstructs_any_single_failure(self, scenario):
        self._check(CARRepair(), scenario)

    @staticmethod
    def _check(scheme, scenario):
        n, k, failed, placement_kind, seed, matrix = scenario
        ctx = build_context(n, k, failed, placement_kind, matrix)
        stripe = encode_stripe(ctx, seed)
        plan = scheme.plan(ctx)
        store = initial_store_for(stripe, ctx.placement, failed)
        result = execute_plan(plan, ctx.cluster, store)
        for b in failed:
            np.testing.assert_array_equal(
                result.recovered[b], stripe.get_payload(b)
            )


class TestTrafficConsistency:
    @given(repair_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_executor_and_simulator_agree(self, scenario):
        n, k, failed, placement_kind, seed, matrix = scenario
        ctx = build_context(n, k, failed, placement_kind, matrix)
        stripe = encode_stripe(ctx, seed)
        for scheme in [TraditionalRepair(), RPRScheme()]:
            plan = scheme.plan(ctx)
            store = initial_store_for(stripe, ctx.placement, failed)
            concrete = execute_plan(plan, ctx.cluster, store)
            simulated = simulate_repair(scheme, ctx, SIMICS_BANDWIDTH)
            assert concrete.cross_rack_bytes == pytest.approx(
                simulated.cross_rack_bytes
            )
            assert concrete.intra_rack_bytes == pytest.approx(
                simulated.intra_rack_bytes
            )


def simulation_context(n, k, failed, placement_kind, matrix="vandermonde"):
    """Context at the paper's operating point (256 MB blocks, Simics decode).

    Timing orderings only hold in the regime the paper analyses — where a
    cross-rack transfer dwarfs a partial-decode pass.  Pure simulation needs
    no payload bytes, so the realistic block size costs nothing.
    """
    base = build_context(n, k, failed, placement_kind, matrix)
    from repro.rs import SIMICS_DECODE

    return RepairContext(
        code=base.code,
        cluster=base.cluster,
        placement=base.placement,
        failed_blocks=base.failed_blocks,
        block_size=256 * MB,
        cost_model=SIMICS_DECODE,
    )


class TestOrderingProperties:
    @given(repair_scenarios(multi=False))
    @settings(max_examples=40, deadline=None)
    def test_rpr_never_slower_than_car_or_traditional(self, scenario):
        n, k, failed, placement_kind, seed, matrix = scenario
        ctx = simulation_context(n, k, failed, placement_kind, matrix)
        rpr = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        car = simulate_repair(CARRepair(), ctx, SIMICS_BANDWIDTH)
        tra = simulate_repair(TraditionalRepair(), ctx, SIMICS_BANDWIDTH)
        assert rpr.total_repair_time <= car.total_repair_time + 1e-9
        assert rpr.total_repair_time <= tra.total_repair_time + 1e-9

    @given(repair_scenarios(multi=False))
    @settings(max_examples=40, deadline=None)
    def test_single_failure_partial_decoding_never_more_cross_traffic(
        self, scenario
    ):
        """For single failures each remote rack sends at most one block, so
        RPR's cross traffic cannot exceed traditional's (which ships every
        remote helper)."""
        n, k, failed, placement_kind, seed, matrix = scenario
        ctx = build_context(n, k, failed, placement_kind, matrix)
        rpr = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        tra = simulate_repair(TraditionalRepair(), ctx, SIMICS_BANDWIDTH)
        assert rpr.cross_rack_bytes <= tra.cross_rack_bytes + 1e-9

    @given(repair_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_multi_failure_traffic_bound(self, scenario):
        """Multi-failure cross traffic is bounded by l intermediates per
        remote rack (the eq. (9) structure).  Note the paper's claim that
        worst-case traffic never exceeds traditional's assumes k | n; for
        other shapes l * (remote racks) can exceed n (see EXPERIMENTS.md).
        """
        n, k, failed, placement_kind, seed, matrix = scenario
        ctx = build_context(n, k, failed, placement_kind, matrix)
        rpr = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        racks_used = len(ctx.placement.racks_used(ctx.cluster))
        bound = len(failed) * racks_used * ctx.block_size
        assert rpr.cross_rack_bytes <= bound + 1e-9

    @given(repair_scenarios(multi=False), st.integers(2, 40))
    @settings(max_examples=30, deadline=None)
    def test_rpr_time_scales_down_with_bandwidth_ratio(self, scenario, ratio):
        """RPR keeps winning as the cross/intra bandwidth skew varies."""
        n, k, failed, placement_kind, seed, matrix = scenario
        ctx = simulation_context(n, k, failed, placement_kind, matrix)
        bw = HierarchicalBandwidth(intra=100e6, cross=100e6 / ratio)
        rpr = simulate_repair(RPRScheme(), ctx, bw)
        tra = simulate_repair(TraditionalRepair(), ctx, bw)
        assert rpr.total_repair_time <= tra.total_repair_time + 1e-9
