"""Property tests for scaling and composition invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, RPRPlacement, SIMICS_BANDWIDTH
from repro.multistripe import StripeStore, merge_plans, repair_node_failure
from repro.repair import (
    CARRepair,
    RepairContext,
    RPRScheme,
    TraditionalRepair,
    simulate_repair,
)
from repro.rs import MB, SIMICS_DECODE, get_code
from repro.sim import SimulationEngine

CODES = st.sampled_from([(4, 2), (6, 2), (6, 3), (8, 4), (12, 4)])
SCHEMES = st.sampled_from(
    [TraditionalRepair(), CARRepair(), RPRScheme()]
)


def context(n, k, failed, block_size):
    racks = -(-(n + k) // k) + 1
    cluster = Cluster.homogeneous(racks, 2 * k)
    placement = RPRPlacement().place(cluster, n, k)
    return RepairContext(
        code=get_code(n, k),
        cluster=cluster,
        placement=placement,
        failed_blocks=tuple(failed),
        block_size=block_size,
        cost_model=SIMICS_DECODE,
    )


class TestBlockSizeScaling:
    @given(CODES, SCHEMES, st.integers(0, 30), st.sampled_from([2, 4, 16, 100]))
    @settings(max_examples=40, deadline=None)
    def test_makespan_linear_in_block_size(self, nk, scheme, seed, factor):
        """With zero link latency, every duration is B/speed, so the whole
        schedule scales linearly with block size."""
        n, k = nk
        failed = [seed % n]
        small = simulate_repair(
            scheme, context(n, k, failed, 1 * MB), SIMICS_BANDWIDTH
        )
        large = simulate_repair(
            scheme, context(n, k, failed, factor * MB), SIMICS_BANDWIDTH
        )
        assert large.total_repair_time == pytest.approx(
            factor * small.total_repair_time, rel=1e-9
        )
        assert large.cross_rack_bytes == pytest.approx(
            factor * small.cross_rack_bytes
        )

    @given(CODES, SCHEMES, st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_plan_structure_independent_of_block_size(self, nk, scheme, seed):
        n, k = nk
        failed = [seed % n]
        plan_small = scheme.plan(context(n, k, failed, 1 * MB))
        plan_large = scheme.plan(context(n, k, failed, 256 * MB))
        assert list(plan_small.ops.keys()) == list(plan_large.ops.keys())


class TestPlanDeterminism:
    @given(CODES, SCHEMES, st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_same_context_same_plan(self, nk, scheme, seed):
        n, k = nk
        failed = [seed % (n + k)]
        ctx = context(n, k, failed, 4 * MB)
        a = scheme.plan(ctx)
        b = scheme.plan(ctx)
        assert list(a.ops.keys()) == list(b.ops.keys())
        for oid in a.ops:
            assert a.ops[oid] == b.ops[oid]
        assert a.outputs == b.outputs


class TestMultiStripeComposition:
    @given(st.integers(2, 12), st.integers(0, 3))
    @settings(max_examples=15, deadline=None)
    def test_parallel_rebuild_bounded_by_sum_of_parts(self, stripes, node):
        """The merged graph can only interleave work: its makespan is at
        most the sum of per-stripe makespans (sequential-like bound) and
        at least the largest single stripe's makespan."""
        cluster = Cluster.homogeneous(5, 6)
        store = StripeStore.build(cluster, get_code(6, 2), stripes)
        scheme = RPRScheme()
        parallel = repair_node_failure(
            store, node, scheme, SIMICS_BANDWIDTH, mode="parallel"
        )
        if not parallel.plans:
            return
        engine = SimulationEngine(cluster, SIMICS_BANDWIDTH)
        individual = [
            engine.run(merge_plans([plan], SIMICS_DECODE)).makespan
            for plan in parallel.plans
        ]
        assert parallel.makespan <= sum(individual) + 1e-6
        assert parallel.makespan >= max(individual) - 1e-6

    @given(st.integers(2, 10))
    @settings(max_examples=10, deadline=None)
    def test_sequential_equals_sum_within_overheads(self, stripes):
        """Sequential mode chains stripes, so its makespan is at least
        every individual makespan combined (it can exceed the plain sum
        only via rounding, never undercut it by more than epsilon)."""
        cluster = Cluster.homogeneous(5, 6)
        store = StripeStore.build(cluster, get_code(6, 2), stripes)
        scheme = RPRScheme()
        seq = repair_node_failure(
            store, 0, scheme, SIMICS_BANDWIDTH, mode="sequential"
        )
        if not seq.plans:
            return
        engine = SimulationEngine(cluster, SIMICS_BANDWIDTH)
        individual = [
            engine.run(merge_plans([plan], SIMICS_DECODE)).makespan
            for plan in seq.plans
        ]
        assert seq.makespan >= sum(individual) - 1e-6


class TestStructuralLowerBounds:
    @given(CODES, SCHEMES, st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_makespan_respects_plan_structure(self, nk, scheme, seed):
        """The simulated makespan can never undercut the plan's structural
        lower bounds: chained cross transfers each cost a full t_c, and
        the longest op chain bounds from below as well."""
        from repro.repair import PlanStats

        n, k = nk
        failed = [seed % (n + k)]
        ctx = context(n, k, failed, 16 * MB)
        plan = scheme.plan(ctx)
        stats = PlanStats.from_plan(plan, ctx.cluster)
        outcome = simulate_repair(scheme, ctx, SIMICS_BANDWIDTH)
        t_c = ctx.block_size / SIMICS_BANDWIDTH.cross
        assert outcome.total_repair_time >= stats.critical_path_cross * t_c - 1e-9
        # traffic identity: ledger equals plan structure exactly
        assert outcome.cross_rack_bytes == pytest.approx(stats.cross_bytes)
