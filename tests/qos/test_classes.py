"""Tests for the QoS priority model (repro.qos.classes)."""

import pytest

from repro.qos import (
    BACKGROUND_REPAIR,
    DEADLINE_REPAIR,
    DEFAULT_POLICY,
    FOREGROUND,
    PRIORITY_CLASSES,
    QoSPolicy,
)


class TestPriorityClasses:
    def test_strictly_ordered_foreground_first(self):
        assert PRIORITY_CLASSES == (FOREGROUND, DEADLINE_REPAIR, BACKGROUND_REPAIR)

    def test_default_policy_favours_foreground(self):
        weights = DEFAULT_POLICY.weights()
        assert set(weights) == set(PRIORITY_CLASSES)
        assert weights[FOREGROUND] > weights[DEADLINE_REPAIR] > weights[BACKGROUND_REPAIR]


class TestQoSPolicy:
    def test_zero_weight_classes_are_rejected(self):
        """A zero-weight class starves under load; the constructor says so."""
        with pytest.raises(ValueError, match="starve"):
            QoSPolicy(background_repair=0.0)
        with pytest.raises(ValueError, match="positive weight"):
            QoSPolicy(foreground=-1.0)

    def test_weights_need_not_sum_to_one(self):
        policy = QoSPolicy(foreground=6.0, deadline_repair=3.0, background_repair=1.0)
        assert policy.repair_share == pytest.approx(0.4)

    def test_store_weights_collapse_the_repair_classes(self):
        """Daemons split foreground vs repair only: the deadline vs
        background distinction is an *ordering* concern (the coordinator
        repairs most-at-risk first), not a bandwidth one."""
        policy = QoSPolicy(foreground=0.5, deadline_repair=0.3, background_repair=0.2)
        assert policy.store_weights() == {
            "foreground": 0.5,
            "repair": pytest.approx(0.5),
        }

    def test_repair_share_is_normalised(self):
        assert DEFAULT_POLICY.repair_share == pytest.approx(0.4)
        assert QoSPolicy(1.0, 1.0, 1.0).repair_share == pytest.approx(2 / 3)

    def test_policy_is_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_POLICY.foreground = 0.9
