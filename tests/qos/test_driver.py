"""Unit tests for the replay driver's measurement plumbing.

Pure-python pieces only — percentile math, phase classification, the
error/rejection split.  The live end of the driver (real sockets, real
kills) is covered by ``test_replay_live.py``.
"""

import pytest

from repro.qos import (
    ReplayReport,
    RequestSample,
    object_payload,
    percentiles,
)


class TestPercentiles:
    def test_empty_input_serialises_cleanly(self):
        summary = percentiles([])
        assert summary["count"] == 0
        assert summary["p50"] is None and summary["max"] is None

    def test_single_sample_is_every_percentile(self):
        summary = percentiles([0.25])
        assert summary["p50"] == summary["p99"] == summary["max"] == 0.25
        assert summary["count"] == 1

    def test_nearest_rank_on_known_data(self):
        data = [i / 100 for i in range(1, 101)]  # 0.01 .. 1.00
        summary = percentiles(data)
        assert summary["p50"] == pytest.approx(0.50)
        assert summary["p90"] == pytest.approx(0.90)
        assert summary["p99"] == pytest.approx(0.99)
        assert summary["max"] == pytest.approx(1.00)
        assert summary["mean"] == pytest.approx(0.505)

    def test_order_independent(self):
        assert percentiles([3.0, 1.0, 2.0]) == percentiles([1.0, 2.0, 3.0])


def sample(op="get", start=0.0, latency=0.01, ok=True, degraded=False,
           rejected=False):
    return RequestSample(
        op=op, obj="obj-0", start=start, end=start + latency,
        latency=latency, ok=ok, degraded=degraded,
        error="" if ok else "boom", rejected=rejected,
    )


class TestReplayReport:
    def test_phase_classification_around_the_repair_window(self):
        report = ReplayReport(
            samples=[sample(start=t) for t in (0.1, 1.1, 2.5)],
            duration=3.0,
            repair_window=(1.0, 2.0),
        )
        phases = [report.phase_of(s) for s in report.samples]
        assert phases == ["pre", "repair", "post"]

    def test_open_ended_window_never_reaches_post(self):
        report = ReplayReport(
            samples=[sample(start=5.0)], duration=6.0, repair_window=(1.0, None)
        )
        assert report.phase_of(report.samples[0]) == "repair"

    def test_no_window_means_everything_is_pre(self):
        report = ReplayReport(samples=[sample(start=9.0)], duration=10.0)
        assert report.phase_of(report.samples[0]) == "pre"

    def test_rejections_are_not_errors(self):
        """Write unavailability during the degraded window is reported,
        but it must not fail a run the way a data-path error does."""
        report = ReplayReport(
            samples=[
                sample(op="put", ok=False, rejected=True),
                sample(op="get", ok=False),
                sample(op="get", ok=True, degraded=True),
            ],
            duration=1.0,
        )
        assert len(report.errors) == 1
        assert report.errors[0].op == "get"
        assert len(report.rejections) == 1
        assert report.degraded_gets == 1
        summary = report.to_dict()
        assert summary["errors"] == 1
        assert summary["rejected"] == 1
        assert summary["degraded_gets"] == 1

    def test_latencies_filter_by_op_and_phase(self):
        report = ReplayReport(
            samples=[
                sample(op="get", start=0.1, latency=0.010),
                sample(op="put", start=0.2, latency=0.020),
                sample(op="get", start=1.5, latency=0.040),
                sample(op="get", start=1.6, latency=0.080, ok=False),
            ],
            duration=3.0,
            repair_window=(1.0, 2.0),
        )
        assert report.latencies(op="get") == [0.010, 0.040]  # failures excluded
        assert report.latencies(op="get", phase="repair") == [0.040]
        assert report.summary(op="get", phase="repair")["count"] == 1

    def test_sample_is_frozen(self):
        s = sample()
        with pytest.raises(AttributeError):
            s.latency = 0.0


class TestObjectPayload:
    def test_deterministic_per_name_and_seed(self):
        assert object_payload("obj-1", 512, seed=7) == object_payload("obj-1", 512, seed=7)
        assert object_payload("obj-1", 512, seed=7) != object_payload("obj-2", 512, seed=7)
        assert object_payload("obj-1", 512, seed=7) != object_payload("obj-1", 512, seed=8)

    def test_exact_size(self):
        assert len(object_payload("obj-0", 12345)) == 12345
