"""Live replay tests: the QoS driver against a real in-process store.

Small traces (seconds, not minutes) — the full trade-off curve runs in
``benchmarks/bench_qos_tradeoff.py`` and the perf harness's
``qos_suite``; here we pin the driver's *contract*: every GET survives a
mid-trace kill, verification catches the right things, and both replay
modes drain the whole trace.
"""

import asyncio

import pytest

from repro.qos import (
    LocalService,
    preload_working_set,
    replay_trace,
)
from repro.workloads import zipf_object_trace

OBJECTS = 6
OBJECT_BYTES = 3 * 4096
SEED = 11


def test_replay_mode_validation():
    async def _run():
        with pytest.raises(ValueError, match="unknown replay mode"):
            await replay_trace(None, [], mode="batch")
        with pytest.raises(ValueError, match="kills given without a kill_fn"):
            await replay_trace(None, [], kills=[(0.1, 0)])

    asyncio.run(_run())


def test_closed_loop_replay_with_mid_trace_kill():
    """The acceptance-bar scenario: PUT working set, kill a daemon while
    the trace runs, and every replayed GET still returns written bytes —
    at least one of them via the degraded path."""

    async def _run():
        async with LocalService(
            block_size=4096, suspect_after=0.45, sweep_interval=0.05,
            heartbeat=0.1,
        ) as svc:
            expected = await preload_working_set(
                svc.client, OBJECTS, OBJECT_BYTES, seed=SEED
            )
            assert set(expected) == {f"obj-{i}" for i in range(OBJECTS)}
            events = zipf_object_trace(
                OBJECTS, 200, get_fraction=0.95, seed=SEED
            )
            # The victim holds block 0 of stripe 0 — obj-0's stripe, and
            # obj-0 is the Zipf head, so post-kill GETs keep hitting it.
            # Kill almost immediately: the closed-loop trace drains in
            # well under a second, and the kill must land inside it.
            victim = svc.coordinator.stripes[0].placement.node_of(0)
            report = await replay_trace(
                svc.client,
                events,
                mode="closed",
                concurrency=4,
                expected=expected,
                kills=[(0.05, victim)],
                kill_fn=svc.kill,
                object_bytes=OBJECT_BYTES,
                seed=SEED,
            )
            assert len(report.samples) == len(events)
            assert report.errors == [], [s.error for s in report.errors]
            assert report.degraded_gets > 0, (
                "the kill never pushed a GET onto the degraded path"
            )
            # A short trace can end before the failure detector fires,
            # so a repair window is optional here — but when the tracker
            # did see one it must be well-formed (opened after t0, and
            # closed no earlier than it opened).
            if report.repair_window is not None:
                opened, closed = report.repair_window
                assert opened >= 0
                assert closed is None or closed >= opened
            assert report.duration > 0
            summary = report.to_dict()
            assert summary["requests"] == len(events)
            assert summary["get"]["count"] > 0

    asyncio.run(_run())


def test_open_loop_replay_fires_the_whole_trace():
    """Open loop: arrivals follow the trace clock; nothing is dropped
    even with no failures to slow things down."""

    async def _run():
        async with LocalService(block_size=4096) as svc:
            expected = await preload_working_set(
                svc.client, OBJECTS, OBJECT_BYTES, seed=SEED
            )
            events = zipf_object_trace(
                OBJECTS, 40, rate=200.0, get_fraction=1.0, seed=SEED
            )
            report = await replay_trace(
                svc.client,
                events,
                mode="open",
                time_scale=0.5,
                expected=expected,
                object_bytes=OBJECT_BYTES,
                seed=SEED,
            )
            assert len(report.samples) == len(events)
            assert report.errors == []
            assert report.degraded_gets == 0
            # Open-loop arrivals respect the (scaled) trace schedule.
            for ev, s in zip(events, sorted(report.samples, key=lambda s: s.start)):
                assert s.start >= ev.time * 0.5 - 0.05

    asyncio.run(_run())


def test_kill_removes_the_daemon_and_its_heartbeat():
    async def _run():
        async with LocalService(block_size=4096) as svc:
            victim = next(iter(svc.daemons))
            await svc.kill(victim)
            assert victim not in svc.daemons
            # The detector eventually declares it dead — and the rest alive.
            deadline = asyncio.get_event_loop().time() + 10.0
            while True:
                status = await svc.client.status()
                entry = status["nodes"][str(victim)]
                if not entry["alive"]:
                    break
                assert asyncio.get_event_loop().time() < deadline
                await asyncio.sleep(0.05)

    asyncio.run(_run())
