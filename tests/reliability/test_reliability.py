"""Tests for the durability models (Markov + Monte Carlo)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import build_simics_environment, context_for
from repro.reliability import (
    mttdl,
    mttdl_from_repair_times,
    simulate_stripe_lifetimes,
)
from repro.repair import RPRScheme, TraditionalRepair, simulate_repair


class TestMarkovModel:
    def test_no_tolerance_is_pure_exponential(self):
        """k=0: MTTDL = 1 / (width * lam) — first failure is loss."""
        assert mttdl(4, 0, lam=0.5, repair_rates=[]) == pytest.approx(0.5)

    def test_single_tolerance_closed_form(self):
        """k=1 closed form: T0 + T1 with T1 = 1/f1 + (mu/f1) T0."""
        width, lam, mu = 3, 0.1, 2.0
        f0, f1 = width * lam, (width - 1) * lam
        t0 = 1 / f0
        t1 = 1 / f1 + (mu / f1) * t0
        assert mttdl(width, 1, lam, [mu]) == pytest.approx(t0 + t1)

    def test_faster_repair_increases_mttdl(self):
        slow = mttdl(16, 4, 1e-8, [1 / 200.0] * 4)
        fast = mttdl(16, 4, 1e-8, [1 / 50.0] * 4)
        assert fast > slow

    def test_rare_failure_scaling(self):
        """In the rare-failure regime, halving repair time multiplies
        MTTDL by ~2^k."""
        lam = 1e-9
        k = 3
        base = mttdl(10, k, lam, [1 / 100.0] * k)
        doubled = mttdl(10, k, lam, [1 / 50.0] * k)
        assert doubled / base == pytest.approx(2**k, rel=0.01)

    def test_numerically_stable_at_production_rates(self):
        """Production parameters must not produce garbage (the naive
        linear-system formulation returned negative values here)."""
        lam = 1 / (4 * 365.25 * 24 * 3600)  # one failure per block per 4y
        value = mttdl(16, 4, lam, [1 / 200.0] * 4)
        assert value > 0
        assert math.isfinite(value)
        # Order of magnitude sanity: ~ mu^4 / (lambda^5 * width combos).
        assert value > 1e20

    @given(
        st.integers(2, 20),
        st.integers(1, 4),
        st.floats(1e-9, 1e-3),
        st.floats(1e-4, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_positive_and_decreasing_in_lambda(self, width, k, lam, mu):
        if k >= width:
            return
        value = mttdl(width, k, lam, [mu] * k)
        assert value > 0
        worse = mttdl(width, k, lam * 2, [mu] * k)
        assert worse < value

    def test_from_repair_times(self):
        direct = mttdl(8, 2, 1e-6, [0.01, 0.02])
        via_times = mttdl_from_repair_times(8, 2, 1e-6, [100.0, 50.0])
        assert direct == pytest.approx(via_times)

    def test_validation(self):
        with pytest.raises(ValueError):
            mttdl(4, 2, -1.0, [1, 1])
        with pytest.raises(ValueError):
            mttdl(4, 5, 1.0, [1] * 5)
        with pytest.raises(ValueError):
            mttdl(4, 2, 1.0, [1.0])  # wrong number of rates
        with pytest.raises(ValueError):
            mttdl(4, 2, 1.0, [1.0, 0.0])
        with pytest.raises(ValueError):
            mttdl_from_repair_times(4, 2, 1.0, [1.0, -5.0])


class TestMonteCarlo:
    @pytest.fixture(scope="class")
    def env(self):
        return build_simics_environment(6, 2)

    def test_deterministic_given_seed(self, env):
        a = simulate_stripe_lifetimes(env, RPRScheme(), 1 / 500.0, trials=20, seed=3)
        b = simulate_stripe_lifetimes(env, RPRScheme(), 1 / 500.0, trials=20, seed=3)
        assert a.mttdl_seconds == b.mttdl_seconds

    def test_result_fields(self, env):
        result = simulate_stripe_lifetimes(
            env, RPRScheme(), 1 / 500.0, trials=25, seed=1
        )
        assert result.trials == 25
        assert result.min_lifetime <= result.mttdl_seconds <= result.max_lifetime
        assert result.repair_sets_evaluated > 0
        assert result.mttdl_years == pytest.approx(
            result.mttdl_seconds / (365.25 * 24 * 3600)
        )

    def test_rpr_outlives_traditional(self, env):
        """The headline: faster repair -> longer stripe lifetime."""
        lam = 1 / 500.0  # accelerated so trials terminate
        tra = simulate_stripe_lifetimes(
            env, TraditionalRepair(), lam, trials=120, seed=7
        )
        rpr = simulate_stripe_lifetimes(env, RPRScheme(), lam, trials=120, seed=7)
        assert rpr.mttdl_seconds > tra.mttdl_seconds

    def test_repair_time_scale_sensitivity(self, env):
        lam = 1 / 500.0
        base = simulate_stripe_lifetimes(env, RPRScheme(), lam, trials=60, seed=5)
        slowed = simulate_stripe_lifetimes(
            env, RPRScheme(), lam, trials=60, seed=5, repair_time_scale=10.0
        )
        assert slowed.mttdl_seconds < base.mttdl_seconds

    def test_mc_matches_markov_with_uniform_times(self, env):
        """With acceleration, MC and the analytic chain agree within
        sampling error when using the same per-state repair times."""
        lam = 1 / 1000.0
        scheme = TraditionalRepair()
        mc = simulate_stripe_lifetimes(env, scheme, lam, trials=400, seed=11)
        times = [
            simulate_repair(
                scheme, context_for(env, list(range(l))), env.bandwidth
            ).total_repair_time
            for l in range(1, env.code.k + 1)
        ]
        analytic = mttdl_from_repair_times(env.code.width, env.code.k, lam, times)
        assert mc.mttdl_seconds == pytest.approx(analytic, rel=0.35)

    def test_rare_rate_raises_instead_of_hanging(self, env):
        with pytest.raises(RuntimeError):
            simulate_stripe_lifetimes(
                env,
                RPRScheme(),
                lam=1e-12,
                trials=1,
                seed=0,
                max_events=5_000,
            )

    def test_validation(self, env):
        with pytest.raises(ValueError):
            simulate_stripe_lifetimes(env, RPRScheme(), lam=0.0)
        with pytest.raises(ValueError):
            simulate_stripe_lifetimes(env, RPRScheme(), lam=1.0, trials=0)
        with pytest.raises(ValueError):
            simulate_stripe_lifetimes(
                env, RPRScheme(), lam=1.0, repair_time_scale=0.0
            )


class TestLossPredicate:
    def test_custom_predicate_changes_outcome(self):
        """A stricter loss rule (any 2 concurrent failures) must shorten
        lifetimes relative to the default k-tolerance rule."""
        env = build_simics_environment(6, 2)
        lam = 1 / 500.0
        default = simulate_stripe_lifetimes(
            env, RPRScheme(), lam, trials=60, seed=9
        )
        strict = simulate_stripe_lifetimes(
            env,
            RPRScheme(),
            lam,
            trials=60,
            seed=9,
            loss_predicate=lambda failed: len(failed) >= 2,
        )
        assert strict.mttdl_seconds < default.mttdl_seconds

    def test_lrc_pattern_aware_durability(self):
        """Non-MDS durability: LRC loses on patterns within k, but its
        faster local repair shrinks the exposure window — at accelerated
        failure rates it out-survives RS(12,4)+RPR (deterministic seed)."""
        from repro.cluster import ContiguousPlacement
        from repro.experiments.common import ExperimentEnv
        from repro.lrc import LRCCode, LRCLocalRepair, is_recoverable
        from repro.rs import MB, SIMICS_DECODE, get_code
        from repro.cluster import Cluster, SIMICS_BANDWIDTH

        def env_for(code):
            cluster = Cluster.homogeneous(9, 4)
            placement = ContiguousPlacement(per_rack=2).place(
                cluster, code.n, code.k
            )
            return ExperimentEnv(
                code=code,
                cluster=cluster,
                placement=placement,
                bandwidth=SIMICS_BANDWIDTH,
                cost_model=SIMICS_DECODE,
                block_size=256 * MB,
            )

        lam = 1 / 2000.0
        lrc_code = LRCCode(12, 2, 2)
        lrc = simulate_stripe_lifetimes(
            env_for(lrc_code),
            LRCLocalRepair(),
            lam,
            trials=60,
            seed=3,
            loss_predicate=lambda failed: not is_recoverable(lrc_code, failed),
        )
        rs = simulate_stripe_lifetimes(
            env_for(get_code(12, 4)), RPRScheme(), lam, trials=60, seed=3
        )
        assert lrc.mttdl_seconds > rs.mttdl_seconds
