"""Shared fixtures for repair tests."""

import numpy as np
import pytest

from repro.cluster import Cluster, ContiguousPlacement, RPRPlacement
from repro.rs import MB, DecodeCostModel, RSCode
from repro.repair import RepairContext

#: Small block size so concrete execution is instant; the cost model keeps
#: the Simics shape (matrix build = 4x).
BLOCK_SIZE = 512
COST = DecodeCostModel(xor_speed=1000 * MB, matrix_build_factor=4.0)


def make_cluster(n, k, spares_factor=2):
    """Cluster sized for a contiguous placement with k spares per rack."""
    racks = -(-(n + k) // k) + 1
    return Cluster.homogeneous(racks, spares_factor * k)


def make_context(n, k, failed, placement="rpr", block_size=BLOCK_SIZE):
    code = RSCode(n, k)
    cluster = make_cluster(n, k)
    policy = RPRPlacement() if placement == "rpr" else ContiguousPlacement()
    pl = policy.place(cluster, n, k)
    return RepairContext(
        code=code,
        cluster=cluster,
        placement=pl,
        failed_blocks=tuple(failed),
        block_size=block_size,
        cost_model=COST,
    )


def make_stripe(ctx, seed=0):
    rng = np.random.default_rng(seed)
    data = [
        rng.integers(0, 256, ctx.block_size, dtype=np.uint8)
        for _ in range(ctx.code.n)
    ]
    return ctx.code.encode_stripe(data)


@pytest.fixture
def ctx42():
    return make_context(4, 2, failed=[1])
