"""Degraded repair: mid-repair helper death, re-planning, byte oracle.

The contracts from docs/FAULTS.md:

* every scheme survives a helper dying mid-gather — the re-planned
  repair reconstructs the exact lost bytes (executor oracle);
* RPR's re-plan consumes partial sums already delivered by the failed
  attempt (pinned RS(8,3) scenario);
* below the decode threshold, or past the retry budget, the loop raises
  a typed ``IrrecoverableError`` — never a silent wrong answer;
* a fault plan that never fires reproduces the fault-free repair
  exactly, and faulted runs are deterministic.

Helper deaths are anchored as fractions of each scheme's own fault-free
makespan, so the scenarios are block-size portable (the same trick the
``rpr faults`` CLI uses).
"""

import numpy as np
import pytest

from repro.cluster import SIMICS_BANDWIDTH
from repro.repair import (
    CARRepair,
    IrrecoverableError,
    RPRScheme,
    TraditionalRepair,
    recovery_targets,
    simulate_repair,
    simulate_repair_with_faults,
)
from repro.sim import FaultPlan, NodeDeath

from .conftest import make_context, make_stripe

SCHEMES = [TraditionalRepair(), CARRepair(), RPRScheme()]


def helper_death(scheme, ctx, frac=0.6):
    """A FaultPlan killing a helper whose send is in flight at ``frac``
    of the scheme's fault-free makespan (never a recovery target)."""
    out = simulate_repair(scheme, ctx, SIMICS_BANDWIDTH)
    targets = set(recovery_targets(ctx).values())
    t = frac * out.sim.makespan
    for op in out.plan.sends():
        timing = out.sim.timings[op.op_id]
        if timing.start < t < timing.end and op.src not in targets:
            return FaultPlan(deaths=(NodeDeath(node=op.src, time=t),))
    raise AssertionError(f"no helper send in flight at {t}")


def assert_oracle(outcome, ctx, stripe):
    assert outcome.recovered is not None
    for block in ctx.failed_blocks:
        np.testing.assert_array_equal(
            outcome.recovered[block], stripe.get_payload(block)
        )


class TestHelperDeathMidRepair:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_degraded_repair_reconstructs_exact_bytes(self, scheme):
        ctx = make_context(6, 3, failed=[1])
        stripe = make_stripe(ctx)
        faults = helper_death(scheme, ctx)
        outcome = simulate_repair_with_faults(
            scheme, ctx, SIMICS_BANDWIDTH, faults, stripe=stripe
        )
        assert outcome.degraded
        assert outcome.attempts == 2
        assert len(outcome.dead_nodes) == 1
        # The aborted first attempt left wire work that never helped.
        assert outcome.wasted_bytes > 0
        # Degraded repair costs time, never saves it.
        fault_free = simulate_repair(scheme, ctx, SIMICS_BANDWIDTH)
        assert outcome.total_repair_time > fault_free.total_repair_time
        assert_oracle(outcome, ctx, stripe)

    @pytest.mark.parametrize(
        "scheme", [TraditionalRepair(), RPRScheme()], ids=lambda s: s.name
    )
    def test_multi_failure_repair_survives_helper_death(self, scheme):
        ctx = make_context(8, 4, failed=[1, 5])
        stripe = make_stripe(ctx)
        faults = helper_death(scheme, ctx)
        outcome = simulate_repair_with_faults(
            scheme, ctx, SIMICS_BANDWIDTH, faults, stripe=stripe
        )
        assert outcome.degraded
        assert_oracle(outcome, ctx, stripe)

    def test_lost_transfers_retry_and_still_verify(self):
        ctx = make_context(6, 3, failed=[1])
        stripe = make_stripe(ctx)
        faults = FaultPlan(loss_probability=0.4, seed=5)
        outcome = simulate_repair_with_faults(
            RPRScheme(), ctx, SIMICS_BANDWIDTH, faults, stripe=stripe
        )
        # Losses are absorbed within the attempt (requeue, not re-plan).
        assert outcome.attempts == 1
        assert outcome.retry_count > 0
        assert outcome.retried_bytes > 0
        assert_oracle(outcome, ctx, stripe)

    def test_deterministic_outcome(self):
        ctx = make_context(6, 3, failed=[1])
        scheme = RPRScheme()
        faults = helper_death(scheme, ctx)
        runs = [
            simulate_repair_with_faults(scheme, ctx, SIMICS_BANDWIDTH, faults)
            for _ in range(2)
        ]
        assert repr(runs[0].total_repair_time) == repr(runs[1].total_repair_time)
        assert [s.to_dict() for s in runs[0].sims] == [
            s.to_dict() for s in runs[1].sims
        ]


class TestPinnedIntermediateReuse:
    """RS(8,3), block 2 lost: two remote racks' cross sends serialise at
    the target, so killing the second rack's sender (node 12) at 70% of
    the fault-free makespan strands it *after* rack r1's partial sums
    crossed the core — the re-plan must consume those, not re-gather."""

    def run(self, block_size=512):
        ctx = make_context(8, 3, failed=[2], block_size=block_size)
        stripe = make_stripe(ctx)
        fault_free = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        faults = FaultPlan(
            deaths=(NodeDeath(node=12, time=0.7 * fault_free.total_repair_time),)
        )
        outcome = simulate_repair_with_faults(
            RPRScheme(), ctx, SIMICS_BANDWIDTH, faults, stripe=stripe
        )
        return ctx, stripe, outcome

    def test_replan_reuses_delivered_partial_sums(self):
        ctx, stripe, outcome = self.run()
        assert outcome.attempts == 2
        assert outcome.reused_payloads == (
            "rpr:inner:r1:L0:p0:eq0:im",
            "rpr:inner:r1:L1:p0:eq0:im",
        )
        assert_oracle(outcome, ctx, stripe)

    def test_reuse_is_block_size_portable(self):
        _, _, outcome = self.run(block_size=1 << 20)
        assert outcome.reused_payloads == (
            "rpr:inner:r1:L0:p0:eq0:im",
            "rpr:inner:r1:L1:p0:eq0:im",
        )


class TestIrrecoverable:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_below_decode_threshold_raises(self, scheme):
        ctx = make_context(4, 2, failed=[1])
        survivors = [b for b in range(ctx.code.width) if b != 1]
        doomed = [ctx.placement.node_of(b) for b in survivors[:3]]
        faults = FaultPlan(
            deaths=tuple(NodeDeath(node=n, time=0.0) for n in doomed)
        )
        with pytest.raises(IrrecoverableError) as err:
            simulate_repair_with_faults(scheme, ctx, SIMICS_BANDWIDTH, faults)
        assert err.value.failed_blocks == (1,)
        assert err.value.attempt >= 1

    def test_retry_budget_exhausted_raises(self):
        ctx = make_context(6, 3, failed=[1])
        scheme = RPRScheme()
        faults = helper_death(scheme, ctx)
        with pytest.raises(IrrecoverableError):
            simulate_repair_with_faults(
                scheme, ctx, SIMICS_BANDWIDTH, faults, max_attempts=1
            )

    def test_max_attempts_must_be_positive(self):
        ctx = make_context(6, 3, failed=[1])
        with pytest.raises(ValueError):
            simulate_repair_with_faults(
                RPRScheme(), ctx, SIMICS_BANDWIDTH, None, max_attempts=0
            )


class TestZeroFaultIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_no_faults_match_plain_simulation(self, scheme):
        ctx = make_context(6, 3, failed=[1])
        base = simulate_repair(scheme, ctx, SIMICS_BANDWIDTH)
        for faults in (None, FaultPlan()):
            outcome = simulate_repair_with_faults(
                scheme, ctx, SIMICS_BANDWIDTH, faults
            )
            assert not outcome.degraded
            assert outcome.attempts == 1
            assert outcome.reused_payloads == ()
            assert repr(outcome.total_repair_time) == repr(base.total_repair_time)
            assert outcome.cross_rack_bytes == base.cross_rack_bytes

    def test_never_firing_death_matches_plain_simulation(self):
        ctx = make_context(6, 3, failed=[1])
        base = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        faults = FaultPlan(deaths=(NodeDeath(node=0, time=1e9),))
        outcome = simulate_repair_with_faults(
            RPRScheme(), ctx, SIMICS_BANDWIDTH, faults
        )
        assert not outcome.degraded
        assert repr(outcome.total_repair_time) == repr(base.total_repair_time)


class TestOutcomeExport:
    def test_to_dict_is_json_serializable(self):
        import json

        ctx = make_context(6, 3, failed=[1])
        stripe = make_stripe(ctx)
        scheme = RPRScheme()
        faults = helper_death(scheme, ctx)
        outcome = simulate_repair_with_faults(
            scheme, ctx, SIMICS_BANDWIDTH, faults, stripe=stripe
        )
        data = json.loads(json.dumps(outcome.to_dict()))
        assert data["attempts"] == 2
        assert data["scheme"] == scheme.name
        assert data["recovered_blocks"] == [1]

    def test_fault_rollup_aggregates(self):
        from repro.metrics import FaultRollup

        ctx = make_context(6, 3, failed=[1])
        scheme = RPRScheme()
        outcomes = [
            simulate_repair_with_faults(
                scheme, ctx, SIMICS_BANDWIDTH, helper_death(scheme, ctx)
            ),
            simulate_repair_with_faults(scheme, ctx, SIMICS_BANDWIDTH, None),
            None,  # an irrecoverable scenario
        ]
        rollup = FaultRollup.from_outcomes(outcomes)
        assert rollup.scenarios == 3
        assert rollup.completed == 2
        assert rollup.irrecoverable == 1
        assert rollup.max_attempts == 2
        assert rollup.mean_attempts == pytest.approx(1.5)
        assert rollup.wasted_bytes > 0
        data = rollup.to_dict()
        assert data["scenarios"] == 3
