"""Targeted tests for less-travelled paths across the repair stack."""

import numpy as np

from repro.cluster import Cluster, RPRPlacement, SIMICS_BANDWIDTH
from repro.ec2 import build_ec2_environment
from repro.repair import (
    HeterogeneityAwareRPR,
    RepairContext,
    RPRScheme,
    execute_plan,
    initial_store_for,
    simulate_repair,
)
from repro.rs import SIMICS_DECODE
from repro.workloads import encoded_stripe



class TestHeteroMultiFailure:
    def test_multi_failure_reconstructs_on_ec2(self):
        env = build_ec2_environment(8, 4, block_size=512)
        ctx = RepairContext(
            code=env.code,
            cluster=env.cluster,
            placement=env.placement,
            failed_blocks=(0, 5, 9),
            block_size=512,
            cost_model=env.cost_model,
        )
        scheme = HeterogeneityAwareRPR(env.bandwidth)
        stripe = encoded_stripe(env.code, 512, seed=42)
        plan = scheme.plan(ctx)
        store = initial_store_for(stripe, env.placement, ctx.failed_blocks)
        result = execute_plan(plan, env.cluster, store)
        for b in ctx.failed_blocks:
            np.testing.assert_array_equal(
                result.recovered[b], stripe.get_payload(b)
            )

    def test_multi_failure_not_slower_than_plain(self):
        env = build_ec2_environment(12, 4)
        ctx = RepairContext(
            code=env.code,
            cluster=env.cluster,
            placement=env.placement,
            failed_blocks=(0, 4),
            block_size=env.block_size,
            cost_model=env.cost_model,
        )
        hetero = simulate_repair(
            HeterogeneityAwareRPR(env.bandwidth), ctx, env.bandwidth
        )
        plain = simulate_repair(RPRScheme(), ctx, env.bandwidth)
        assert hetero.total_repair_time <= plain.total_repair_time + 1e-9
        assert hetero.cross_rack_blocks == plain.cross_rack_blocks


class TestSingleRackRepairs:
    def test_failure_with_all_helpers_local(self):
        """A stripe narrow enough that the recovery rack holds every
        helper: the plan must contain no cross-rack sends at all."""
        cluster = Cluster.homogeneous(3, 6)
        # RS(3,3): one rack can hold the entire k=3 quota; place 3 per rack.
        from repro.rs import get_code
        from repro.cluster import ContiguousPlacement

        placement = ContiguousPlacement(per_rack=3).place(cluster, 3, 3)
        ctx = RepairContext(
            code=get_code(3, 3),
            cluster=cluster,
            placement=placement,
            failed_blocks=(0,),
            block_size=256,
            cost_model=SIMICS_DECODE,
        )
        plan = RPRScheme().plan(ctx)
        cross = [
            op
            for op in plan.sends()
            if not cluster.same_rack(op.src, op.dst)
        ]
        assert cross  # helpers = 2 local + 1 remote (rack quota is 3)
        # now a truly local case: helpers fully inside the recovery rack
        ctx2 = RepairContext(
            code=get_code(2, 2),
            cluster=cluster,
            placement=ContiguousPlacement(per_rack=2).place(cluster, 2, 2),
            failed_blocks=(0,),
            block_size=256,
            cost_model=SIMICS_DECODE,
        )
        plan2 = RPRScheme().plan(ctx2)
        cross2 = [
            op for op in plan2.sends() if not cluster.same_rack(op.src, op.dst)
        ]
        assert len(cross2) == 1  # d1 local, second helper from next rack

    def test_rpr_outcome_with_zero_cross_traffic_possible(self):
        """With every helper co-located, RPR performs a pure intra repair."""
        cluster = Cluster.homogeneous(2, 8)
        from repro.rs import get_code
        from repro.cluster import ContiguousPlacement

        code = get_code(3, 3)
        placement = ContiguousPlacement(per_rack=3).place(cluster, 3, 3)
        # failed d0 in rack 0 which holds d0,d1,d2; helpers need 3 of
        # {d1,d2,p0,p1,p2}: d1,d2 local + p0 from rack 1 -> 1 cross.
        ctx = RepairContext(
            code=code,
            cluster=cluster,
            placement=placement,
            failed_blocks=(5,),  # parity p2 in rack 1 with p0,p1
            block_size=256,
            cost_model=SIMICS_DECODE,
        )
        outcome = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        # helpers: rack1 survivors p0,p1 + one more from rack0
        assert outcome.cross_rack_blocks >= 1

        stripe = encoded_stripe(code, 256, seed=9)
        plan = RPRScheme().plan(ctx)
        store = initial_store_for(stripe, placement, (5,))
        result = execute_plan(plan, cluster, store)
        np.testing.assert_array_equal(result.recovered[5], stripe.get_payload(5))


class TestStorageOverrideFallback:
    def test_recovery_falls_back_to_other_racks_when_rack_full(self):
        """When the failed block's rack has no free live node, the storage
        system scatters the rebuilt block to another rack."""
        from repro.rs import get_code
        from repro.system import StorageSystem

        # rack size 2 and per-rack quota 2: racks have zero spares.
        cluster = Cluster.homogeneous(5, 2)
        system = StorageSystem(
            cluster,
            get_code(6, 2),
            block_size=128,
            placement_policy=RPRPlacement(),
        )
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 1500, dtype=np.uint8)
        system.put("obj", data)
        victim = system._stripes[0].stored.placement.node_of(0)
        system.fail_node(victim)
        system.repair()
        assert system.verify()
        np.testing.assert_array_equal(system.get("obj"), data)
        # the rebuilt block cannot be in its original rack (no spares there)
        state = system._stripes[0]
        new_node = state.stored.placement.node_of(0)
        assert new_node != victim
