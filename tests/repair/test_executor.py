"""Tests for the concrete plan executor."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.repair import (
    ExecutionError,
    RepairPlan,
    block_key,
    execute_ops,
    execute_plan,
    initial_store_for,
    missing_payload_message,
)
from repro.gf import scale

from .conftest import make_context, make_stripe


@pytest.fixture
def cluster():
    return Cluster.homogeneous(2, 2)


def store_with(node, key, payload):
    return {node: {key: payload}}


class TestSends:
    def test_send_copies_payload(self, cluster):
        payload = np.array([1, 2, 3, 4], dtype=np.uint8)
        plan = RepairPlan(block_size=4)
        plan.add_send("s", 0, 1, "x")
        plan.mark_output(0, 1, "x")
        store = store_with(0, "x", payload)
        result = execute_plan(plan, cluster, store)
        np.testing.assert_array_equal(store[1]["x"], payload)
        np.testing.assert_array_equal(result.recovered[0], payload)

    def test_missing_payload_fails(self, cluster):
        plan = RepairPlan(block_size=4)
        plan.add_send("s", 0, 1, "ghost")
        plan.mark_output(0, 1, "ghost")
        with pytest.raises(ExecutionError):
            execute_plan(plan, cluster, {})

    def test_traffic_accounting(self, cluster):
        payload = np.zeros(4, dtype=np.uint8)
        plan = RepairPlan(block_size=4)
        plan.add_send("intra", 0, 1, "x")
        plan.add_send("cross", 1, 2, "x", deps=["intra"])
        plan.mark_output(0, 2, "x")
        result = execute_plan(plan, cluster, store_with(0, "x", payload))
        assert result.intra_rack_bytes == 4
        assert result.cross_rack_bytes == 4
        assert result.sends_executed == 2


class TestCombines:
    def test_combine_applies_coefficients(self, cluster):
        a = np.array([3, 5], dtype=np.uint8)
        b = np.array([7, 9], dtype=np.uint8)
        plan = RepairPlan(block_size=2)
        plan.add_combine("c", 0, "out", [("a", 2), ("b", 3)])
        plan.mark_output(0, 0, "out")
        store = {0: {"a": a, "b": b}}
        result = execute_plan(plan, cluster, store)
        expected = scale(2, a) ^ scale(3, b)
        np.testing.assert_array_equal(result.recovered[0], expected)
        assert result.combine_count == 1

    def test_combine_missing_input_fails(self, cluster):
        plan = RepairPlan(block_size=2)
        plan.add_combine("c", 0, "out", [("a", 1), ("b", 1)])
        plan.mark_output(0, 0, "out")
        with pytest.raises(ExecutionError):
            execute_plan(plan, cluster, {0: {"a": np.zeros(2, dtype=np.uint8)}})

    def test_dataflow_dependency_enforced(self, cluster):
        """An op consuming a not-yet-produced payload must fail, even if
        the op order would accidentally work out at runtime: topological
        order respects deps, and deps must carry the data flow."""
        plan = RepairPlan(block_size=2)
        # combine consumes "made" but declares no dep on its producer and
        # appears first in insertion order.
        plan.add_combine("consumer", 0, "out", [("made", 1)])
        plan.add_combine("producer", 0, "made", [("raw", 1)])
        plan.mark_output(0, 0, "out")
        with pytest.raises(ExecutionError):
            execute_plan(plan, cluster, {0: {"raw": np.zeros(2, dtype=np.uint8)}})


class TestAbortDiagnostics:
    """The missing-payload message shape is an API: live runs and byte runs
    must both name the full missing-key set and the op's plan position."""

    def test_send_abort_names_key_and_op_position(self, cluster):
        plan = RepairPlan(block_size=4)
        plan.add_send("warmup", 0, 1, "x")
        plan.add_send("s1", 1, 2, "ghost", deps=["warmup"])
        plan.mark_output(0, 2, "ghost")
        with pytest.raises(ExecutionError) as err:
            execute_plan(plan, cluster, store_with(0, "x", np.zeros(4, dtype=np.uint8)))
        assert str(err.value) == missing_payload_message(
            "send", "s1", 1, 2, ["ghost"], 1
        )

    def test_combine_abort_lists_full_missing_set_sorted(self, cluster):
        plan = RepairPlan(block_size=2)
        plan.add_combine("c", 0, "out", [("b", 1), ("a", 1), ("have", 1)])
        plan.mark_output(0, 0, "out")
        with pytest.raises(ExecutionError) as err:
            execute_plan(plan, cluster, {0: {"have": np.zeros(2, dtype=np.uint8)}})
        message = str(err.value)
        assert message == missing_payload_message(
            "combine", "c", 0, 1, ["a", "b"], 0
        )
        assert "['a', 'b']" in message  # sorted, complete — not just the first

    def test_execute_ops_abort_uses_same_shape(self, cluster):
        plan = RepairPlan(block_size=2)
        plan.add_send("s0", 0, 1, "missing")
        plan.mark_output(0, 1, "missing")
        with pytest.raises(ExecutionError) as err:
            execute_ops(plan, ["s0"], cluster, {})
        assert str(err.value) == missing_payload_message(
            "send", "s0", 0, 1, ["missing"], 0
        )


class TestOutputs:
    def test_missing_output_fails(self, cluster):
        plan = RepairPlan(block_size=2)
        plan.add_send("s", 0, 1, "x")
        plan.mark_output(5, 0, "never-made")
        with pytest.raises(ExecutionError):
            execute_plan(
                plan, cluster, store_with(0, "x", np.zeros(2, dtype=np.uint8))
            )


class TestInitialStore:
    def test_survivors_only(self):
        ctx = make_context(4, 2, failed=[1])
        stripe = make_stripe(ctx)
        store = initial_store_for(stripe, ctx.placement, [1])
        present = {key for bucket in store.values() for key in bucket}
        assert block_key(1) not in present
        assert present == {block_key(b) for b in [0, 2, 3, 4, 5]}

    def test_payloads_on_placement_nodes(self):
        ctx = make_context(4, 2, failed=[1])
        stripe = make_stripe(ctx)
        store = initial_store_for(stripe, ctx.placement, [1])
        for b in [0, 2, 3, 4, 5]:
            node = ctx.placement.node_of(b)
            np.testing.assert_array_equal(
                store[node][block_key(b)], stripe.get_payload(b)
            )


class TestLedgers:
    """The executor's per-node byte ledgers mirror the simulator's.

    Both interpreters consume the same plan; under tracing the per-node
    (not just aggregate) byte accounting must agree exactly."""

    @pytest.mark.parametrize("n,k,failed", [(4, 2, [1]), (6, 2, [0]), (8, 4, [1, 5])])
    def test_executor_matches_simulator_per_node(self, n, k, failed):
        from repro.cluster import SIMICS_BANDWIDTH
        from repro.metrics import TrafficLedger
        from repro.repair import RPRScheme, simulate_repair

        ctx = make_context(n, k, failed=failed)
        stripe = make_stripe(ctx)
        scheme = RPRScheme()
        plan = scheme.plan(ctx)
        store = initial_store_for(stripe, ctx.placement, failed)
        concrete = execute_plan(plan, ctx.cluster, store)
        simulated = simulate_repair(scheme, ctx, SIMICS_BANDWIDTH)
        ledger = TrafficLedger.from_sim(simulated.sim, ctx.cluster)
        # Byte counts are integral end-to-end; equality is exact, no
        # tolerance.
        assert concrete.uploaded_by_node == ledger.uploaded_by_node
        assert concrete.downloaded_by_node == ledger.downloaded_by_node
        assert concrete.cross_uploaded_by_rack == ledger.cross_uploaded_by_rack
        assert concrete.cross_rack_bytes == ledger.cross_rack_bytes
        assert concrete.intra_rack_bytes == ledger.intra_rack_bytes
        for value in (
            ledger.cross_rack_bytes,
            ledger.intra_rack_bytes,
            *ledger.uploaded_by_node.values(),
            *ledger.downloaded_by_node.values(),
            *ledger.cross_uploaded_by_rack.values(),
        ):
            assert type(value) is int

    def test_to_dict_is_json_serializable(self, cluster):
        import json

        payload = np.zeros(4, dtype=np.uint8)
        plan = RepairPlan(block_size=4)
        plan.add_send("s", 0, 2, "x")
        plan.mark_output(0, 2, "x")
        result = execute_plan(plan, cluster, store_with(0, "x", payload))
        data = json.loads(json.dumps(result.to_dict()))
        assert data["cross_rack_bytes"] == 4
        assert data["uploaded_by_node"] == {"0": 4}
        assert data["cross_uploaded_by_rack"] == {"0": 4}
        assert data["recovered_blocks"] == [0]
