"""Tests for the extension schemes: hetero-aware RPR and degraded reads."""

import numpy as np
import pytest

from repro.cluster import SIMICS_BANDWIDTH
from repro.ec2 import build_ec2_environment
from repro.repair import (
    HeterogeneityAwareRPR,
    RepairContext,
    RepairPlanningError,
    RPRScheme,
    degraded_read_context,
    execute_plan,
    initial_store_for,
    plan_degraded_read,
    simulate_repair,
)
from repro.repair.rpr.hetero import estimate_gather_makespan, order_sources_by_link_speed
from repro.repair.rpr.inner import InnerResult
from repro.workloads import encoded_stripe, single_failure_scenarios

from .conftest import make_context, make_stripe


def ec2_context(n, k, failed, block_size=512):
    env = build_ec2_environment(n, k, block_size=block_size)
    return (
        RepairContext(
            code=env.code,
            cluster=env.cluster,
            placement=env.placement,
            failed_blocks=tuple(failed),
            block_size=block_size,
            cost_model=env.cost_model,
        ),
        env,
    )


class TestHeterogeneityAwareRPR:
    def test_reconstructs_correctly(self):
        ctx, env = ec2_context(8, 2, [3])
        scheme = HeterogeneityAwareRPR(env.bandwidth)
        stripe = encoded_stripe(env.code, ctx.block_size, seed=3)
        plan = scheme.plan(ctx)
        store = initial_store_for(stripe, env.placement, [3])
        result = execute_plan(plan, env.cluster, store)
        np.testing.assert_array_equal(result.recovered[3], stripe.get_payload(3))

    @pytest.mark.parametrize("n,k", [(6, 2), (8, 2), (12, 4)])
    def test_never_slower_than_plain_rpr_on_ec2(self, n, k):
        env = build_ec2_environment(n, k)
        scheme = HeterogeneityAwareRPR(env.bandwidth)
        plain = RPRScheme()
        for scenario in single_failure_scenarios(env.code, data_only=True):
            ctx = RepairContext(
                code=env.code,
                cluster=env.cluster,
                placement=env.placement,
                failed_blocks=scenario.failed_blocks,
                block_size=env.block_size,
                cost_model=env.cost_model,
            )
            h = simulate_repair(scheme, ctx, env.bandwidth)
            p = simulate_repair(plain, ctx, env.bandwidth)
            assert h.total_repair_time <= p.total_repair_time + 1e-9
            assert h.cross_rack_blocks == p.cross_rack_blocks

    def test_strict_gain_exists_somewhere(self):
        """With >= 3 remote racks the exhaustive ordering must find wins."""
        env = build_ec2_environment(12, 4)
        scheme = HeterogeneityAwareRPR(env.bandwidth)
        plain = RPRScheme()
        gains = []
        for scenario in single_failure_scenarios(env.code, data_only=True):
            ctx = RepairContext(
                code=env.code,
                cluster=env.cluster,
                placement=env.placement,
                failed_blocks=scenario.failed_blocks,
                block_size=env.block_size,
                cost_model=env.cost_model,
            )
            h = simulate_repair(scheme, ctx, env.bandwidth).total_repair_time
            p = simulate_repair(plain, ctx, env.bandwidth).total_repair_time
            gains.append(p - h)
        assert max(gains) > 1.0  # seconds saved on at least one position

    def test_identical_to_plain_on_uniform_links(self):
        """Under the uniform Simics model the ordering is a no-op."""
        ctx = make_context(12, 4, failed=[1])
        scheme = HeterogeneityAwareRPR(SIMICS_BANDWIDTH)
        plain = RPRScheme()
        h = simulate_repair(scheme, ctx, SIMICS_BANDWIDTH)
        p = simulate_repair(plain, ctx, SIMICS_BANDWIDTH)
        assert h.total_repair_time == pytest.approx(p.total_repair_time)

    def test_order_helper_is_stable(self):
        ctx = make_context(6, 2, failed=[1])
        sources = [
            InnerResult(key=f"i{i}", node=n, dep=None)
            for i, n in enumerate([4, 8, 12])
        ]
        ordered = order_sources_by_link_speed(
            ctx.cluster, SIMICS_BANDWIDTH, sources, target=0
        )
        assert [s.key for s in ordered] == ["i0", "i1", "i2"]

    def test_estimator_empty(self):
        ctx = make_context(6, 2, failed=[1])
        assert (
            estimate_gather_makespan(ctx.cluster, SIMICS_BANDWIDTH, [], 0, 100)
            == 0.0
        )

    def test_estimator_single_source(self):
        ctx = make_context(6, 2, failed=[1])
        [rack1_node] = [ctx.cluster.nodes_in_rack(1)[0]]
        t = estimate_gather_makespan(
            ctx.cluster, SIMICS_BANDWIDTH,
            [InnerResult(key="x", node=rack1_node, dep=None)],
            target=0,
            block_size=12_500_000,  # 0.1 s at 125 MB/s... cross: 1 s
        )
        assert t == pytest.approx(1.0)


class TestDegradedRead:
    def test_delivers_to_client(self):
        ctx = make_context(6, 3, failed=[2])
        # client: a spare node in a *different* rack than the failed block
        client_rack = (ctx.rack_of_block(2) + 1) % ctx.cluster.num_racks
        client = ctx.placement.spare_nodes_in_rack(ctx.cluster, client_rack)[0]
        plan = plan_degraded_read(RPRScheme(), ctx, client)
        node, _ = plan.outputs[2]
        assert node == client
        stripe = make_stripe(ctx)
        store = initial_store_for(stripe, ctx.placement, [2])
        result = execute_plan(plan, ctx.cluster, store)
        np.testing.assert_array_equal(result.recovered[2], stripe.get_payload(2))

    def test_client_rack_becomes_recovery_rack(self):
        """Helpers in the client's rack stream locally; aggregation lands
        at the client."""
        ctx = make_context(12, 4, failed=[1])
        client_rack = 2
        client = ctx.placement.spare_nodes_in_rack(ctx.cluster, client_rack)[0]
        plan = plan_degraded_read(RPRScheme(), ctx, client)
        local_sends = [
            op
            for op in plan.sends()
            if op.dst == client and ctx.cluster.same_rack(op.src, op.dst)
        ]
        assert local_sends  # rack-2 helpers go straight to the client

    def test_multi_failure_rejected(self):
        ctx = make_context(6, 3, failed=[0, 1])
        with pytest.raises(RepairPlanningError):
            degraded_read_context(ctx, 0)

    def test_client_holding_survivor_uses_it_in_place(self):
        """A client that stores a surviving block of the stripe consumes it
        with zero transfers (it is both helper holder and destination)."""
        ctx = make_context(6, 3, failed=[2])
        survivor_node = ctx.placement.node_of(0)
        plan = plan_degraded_read(RPRScheme(), ctx, survivor_node)
        # block 0 never moves: no send op carries its key.
        from repro.repair import block_key

        assert all(op.key != block_key(0) for op in plan.sends())
        stripe = make_stripe(ctx)
        store = initial_store_for(stripe, ctx.placement, [2])
        result = execute_plan(plan, ctx.cluster, store)
        np.testing.assert_array_equal(result.recovered[2], stripe.get_payload(2))

    def test_client_on_failed_node_allowed(self):
        """Reading at the failed block's own (replaced) node is a repair."""
        ctx = make_context(6, 3, failed=[2])
        failed_node = ctx.placement.node_of(2)
        retargeted = degraded_read_context(ctx, failed_node)
        assert retargeted.recovery_override == ((2, failed_node),)

    def test_unknown_client_rejected(self):
        ctx = make_context(6, 3, failed=[2])
        with pytest.raises(KeyError):
            degraded_read_context(ctx, 10_000)
