"""Tests for the RepairPlan op-DAG."""

import pytest

from repro.rs import DecodeCostModel
from repro.repair import CombineOp, PlanError, RepairPlan, SendOp, block_key
from repro.sim import ComputeJob, TransferJob


class TestOps:
    def test_block_key_format(self):
        assert block_key(3) == "block:3"

    def test_send_self_rejected(self):
        with pytest.raises(PlanError):
            SendOp(op_id="s", src=1, dst=1, key="block:0")

    def test_combine_needs_terms(self):
        with pytest.raises(PlanError):
            CombineOp(op_id="c", node=0, out_key="x", terms=())

    def test_combine_duplicate_inputs_rejected(self):
        with pytest.raises(PlanError):
            CombineOp(
                op_id="c", node=0, out_key="x", terms=(("a", 1), ("a", 2))
            )

    def test_combine_zero_coefficient_rejected(self):
        with pytest.raises(PlanError):
            CombineOp(op_id="c", node=0, out_key="x", terms=(("a", 0),))

    def test_combine_output_aliasing_input_rejected(self):
        with pytest.raises(PlanError):
            CombineOp(op_id="c", node=0, out_key="a", terms=(("a", 1),))


class TestPlanStructure:
    def make_plan(self):
        plan = RepairPlan(block_size=100)
        s = plan.add_send("s", 0, 1, block_key(0))
        plan.add_combine("c", 1, "out", [(block_key(0), 1)], deps=[s])
        plan.mark_output(0, 1, "out")
        return plan

    def test_valid_plan_passes(self):
        self.make_plan().validate()

    def test_duplicate_op_rejected(self):
        plan = self.make_plan()
        with pytest.raises(PlanError):
            plan.add_send("s", 0, 1, block_key(0))

    def test_dangling_dep_rejected(self):
        plan = RepairPlan(block_size=10)
        plan.add_send("s", 0, 1, "x", deps=["ghost"])
        plan.mark_output(0, 1, "x")
        with pytest.raises(PlanError):
            plan.validate()

    def test_no_outputs_rejected(self):
        plan = RepairPlan(block_size=10)
        plan.add_send("s", 0, 1, "x")
        with pytest.raises(PlanError):
            plan.validate()

    def test_duplicate_output_rejected(self):
        plan = self.make_plan()
        with pytest.raises(PlanError):
            plan.mark_output(0, 1, "out")

    def test_invalid_block_size(self):
        with pytest.raises(PlanError):
            RepairPlan(block_size=0)

    def test_sends_and_combines_accessors(self):
        plan = self.make_plan()
        assert len(plan.sends()) == 1
        assert len(plan.combines()) == 1

    def test_cycle_rejected(self):
        plan = RepairPlan(block_size=10)
        plan.add(SendOp(op_id="a", src=0, dst=1, key="x", deps=("b",)))
        plan.add(SendOp(op_id="b", src=1, dst=0, key="y", deps=("a",)))
        plan.mark_output(0, 1, "x")
        with pytest.raises(Exception):
            plan.validate()


class TestCompilation:
    def test_send_becomes_transfer(self):
        plan = RepairPlan(block_size=777)
        plan.add_send("s", 0, 1, "x")
        plan.mark_output(0, 1, "x")
        graph = plan.to_job_graph(DecodeCostModel(xor_speed=100.0))
        job = graph.jobs["s"]
        assert isinstance(job, TransferJob)
        assert job.nbytes == 777
        assert (job.src, job.dst) == (0, 1)

    def test_combine_duration_uses_cost_model(self):
        cost = DecodeCostModel(xor_speed=100.0, matrix_build_factor=4.0)
        plan = RepairPlan(block_size=200)
        plan.add_combine("fast", 0, "a", [("block:0", 1)], with_matrix_build=False)
        plan.add_combine("slow", 0, "b", [("block:1", 1)], with_matrix_build=True)
        plan.mark_output(0, 0, "a")
        graph = plan.to_job_graph(cost)
        assert isinstance(graph.jobs["fast"], ComputeJob)
        assert graph.jobs["fast"].seconds == pytest.approx(2.0)
        assert graph.jobs["slow"].seconds == pytest.approx(8.0)

    def test_deps_preserved(self):
        plan = RepairPlan(block_size=10)
        s = plan.add_send("s", 0, 1, "x")
        plan.add_combine("c", 1, "y", [("x", 1)], deps=[s])
        plan.mark_output(0, 1, "y")
        graph = plan.to_job_graph(DecodeCostModel(xor_speed=1.0))
        assert graph.jobs["c"].deps == ("s",)
