"""Tests for plan introspection (PlanStats / critical_path_hops)."""

import math

from repro.repair import (
    CARRepair,
    PlanStats,
    RepairPlan,
    RPRScheme,
    TraditionalRepair,
    critical_path_hops,
)

from .conftest import make_context


def stats_for(scheme, n=12, k=4, failed=(1,)):
    ctx = make_context(n, k, failed=list(failed))
    return PlanStats.from_plan(scheme.plan(ctx), ctx.cluster), ctx


class TestSchemeShapes:
    def test_traditional_shape(self):
        stats, ctx = stats_for(TraditionalRepair())
        assert stats.sends == 12              # n helpers gathered
        assert stats.combines == 1
        assert stats.matrix_builds == 1
        # structurally flat: gather || decode
        assert stats.critical_path_cross == 1

    def test_car_shape(self):
        stats, _ = stats_for(CARRepair())
        # one cross send per remote rack, all straight to the recovery node
        assert stats.cross_sends == 3
        assert stats.matrix_builds == 1
        assert stats.critical_path_cross == 1  # parallel by structure...
        # ...its 3 serial timesteps come from the recovery port, not the DAG.

    def test_rpr_shape(self):
        stats, _ = stats_for(RPRScheme())
        assert stats.cross_sends == 3          # same traffic as CAR (Fig. 7)
        assert stats.matrix_builds == 0        # XOR fast path
        # the binomial gather chains ceil(log2(3+1)) = 2 cross transfers
        assert stats.critical_path_cross == 2

    def test_rpr_cross_depth_is_logarithmic(self):
        """Structural cross depth = hops the deepest intermediate chains
        through the binomial gather: max(1, ceil(log2 m)) for m remote
        racks (each rack's intermediate crosses exactly once, so
        cross_sends == m)."""
        for n, k in [(4, 2), (6, 2), (8, 2), (12, 4)]:
            stats, ctx = stats_for(RPRScheme(), n=n, k=k)
            m = stats.cross_sends
            expected = max(1, math.ceil(math.log2(m)))
            assert stats.critical_path_cross == expected, (n, k)

    def test_traffic_bytes_match_counts(self):
        stats, ctx = stats_for(RPRScheme())
        assert stats.cross_bytes == stats.cross_sends * ctx.block_size
        assert stats.intra_bytes == stats.intra_sends * ctx.block_size

    def test_no_pipeline_flattens_cross_depth(self):
        stats, _ = stats_for(RPRScheme(pipeline=False))
        assert stats.critical_path_cross == 1


class TestCriticalPath:
    def test_empty_plan(self):
        from repro.cluster import Cluster

        plan = RepairPlan(block_size=10)
        plan.mark_output(0, 0, "x")
        # validate() requires ops via JobGraph? An op-free plan with an
        # output fails validation, so test the helper directly on a
        # minimal one-op plan instead.
        plan.add_send("s", 0, 1, "x")
        cluster = Cluster.homogeneous(2, 2)
        assert critical_path_hops(plan, cluster) == (1, 0)

    def test_chained_cross(self):
        from repro.cluster import Cluster

        cluster = Cluster.homogeneous(3, 2)
        plan = RepairPlan(block_size=10)
        a = plan.add_send("a", 0, 2, "x")            # cross
        plan.add_send("b", 2, 4, "x", deps=[a])      # cross, chained
        plan.add_send("c", 0, 1, "y")                # intra, parallel
        plan.mark_output(0, 4, "x")
        ops, cross = critical_path_hops(plan, cluster)
        assert ops == 2
        assert cross == 2

    def test_independent_maxima(self):
        """Longest op chain and deepest cross chain may differ."""
        from repro.cluster import Cluster

        cluster = Cluster.homogeneous(3, 2)
        plan = RepairPlan(block_size=10)
        # chain 1: three intra hops (ops depth 3, cross 0)
        a = plan.add_send("a", 0, 1, "x")
        b = plan.add_combine("b", 1, "x2", [("x", 1)], deps=[a])
        plan.add_combine("c", 1, "x3", [("x2", 1)], deps=[b])
        # chain 2: two chained cross hops (ops depth 2, cross 2)
        d = plan.add_send("d", 0, 2, "y")
        plan.add_send("e", 2, 4, "y", deps=[d])
        plan.mark_output(0, 1, "x3")
        ops, cross = critical_path_hops(plan, cluster)
        assert ops == 3
        assert cross == 2
