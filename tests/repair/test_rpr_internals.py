"""Unit tests for RPR's inner-tree and cross-gather builders."""

import math

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.repair import RepairPlan, block_key, execute_plan
from repro.repair.rpr import (
    InnerResult,
    build_cross_gather,
    build_direct_gather,
    build_inner_trees,
    matrix_build_free_probability,
    p0_rack_is_all_data,
    xor_fast_path_applicable,
)
from repro.gf import linear_combine, scale
from repro.rs import get_code
from repro.cluster import ContiguousPlacement, RPRPlacement


@pytest.fixture
def cluster():
    return Cluster.homogeneous(4, 6)


def execute(plan, cluster, store):
    plan.mark_output(0, plan.combines()[-1].node, plan.combines()[-1].out_key)
    return execute_plan(plan, cluster, store)


class TestInnerTrees:
    def payloads(self, blocks, size=16, seed=0):
        rng = np.random.default_rng(seed)
        return {b: rng.integers(0, 256, size, dtype=np.uint8) for b in blocks}

    def test_empty_positions(self):
        plan = RepairPlan(block_size=16)
        results = build_inner_trees(plan, [], [{0: 1}], prefix="t")
        assert results == [None]
        assert len(plan.ops) == 0

    def test_single_block_no_ops(self):
        plan = RepairPlan(block_size=16)
        [result] = build_inner_trees(plan, [(5, 0)], [{0: 7}], prefix="t")
        assert result.key == block_key(0)
        assert result.node == 5
        assert result.dep is None
        assert result.coeff == 7  # pending, folded downstream
        assert len(plan.ops) == 0

    def test_pair_combines_at_first_node(self, cluster):
        plan = RepairPlan(block_size=16)
        [result] = build_inner_trees(
            plan, [(0, 0), (1, 1)], [{0: 1, 1: 1}], prefix="t"
        )
        assert result.node == 0
        assert result.coeff == 1
        sends = plan.sends()
        assert len(sends) == 1 and (sends[0].src, sends[0].dst) == (1, 0)
        assert len(plan.combines()) == 1

    @pytest.mark.parametrize("m", [2, 3, 4, 5, 7, 8])
    def test_tree_depth_is_logarithmic(self, cluster, m):
        """Intra transfer *levels* = ceil(log2 m): disjoint pairs overlap."""
        plan = RepairPlan(block_size=16)
        positions = [(i, i) for i in range(m)]
        coeffs = [{i: 1 for i in range(m)}]
        build_inner_trees(plan, positions, coeffs, prefix="t")
        levels = {op.op_id.split(":")[1] for op in plan.sends()}
        assert len(levels) == math.ceil(math.log2(m))

    @pytest.mark.parametrize("m", [1, 2, 3, 5, 6])
    def test_tree_computes_linear_combination(self, cluster, m):
        plan = RepairPlan(block_size=16)
        positions = [(i, i) for i in range(m)]
        coeffs = {i: (i % 254) + 2 for i in range(m)}
        [result] = build_inner_trees(plan, positions, [coeffs], prefix="t")
        payloads = self.payloads(range(m))
        store = {i: {block_key(i): payloads[i]} for i in range(m)}
        if plan.ops:
            plan.mark_output(0, result.node, result.key)
            execute_plan(plan, cluster, store)
        got = scale(result.coeff, store[result.node][result.key])
        expected = linear_combine(
            [coeffs[i] for i in range(m)], [payloads[i] for i in range(m)]
        )
        np.testing.assert_array_equal(got, expected)

    def test_multi_equation_shares_raw_sends(self, cluster):
        """Two equations over the same four blocks: level-0 raw sends are
        emitted once, not twice."""
        plan = RepairPlan(block_size=16)
        positions = [(i, i) for i in range(4)]
        eq0 = {i: 1 for i in range(4)}
        eq1 = {i: 3 for i in range(4)}
        results = build_inner_trees(plan, positions, [eq0, eq1], prefix="t")
        assert all(r is not None for r in results)
        raw_sends = [
            op for op in plan.sends() if op.key.startswith("block:")
        ]
        assert len(raw_sends) == 2  # blocks 1 and 3 move once each at L0
        # combines are per-equation
        assert len(plan.combines()) == 2 * 3  # (4->2->1) = 3 merges per eq

    def test_equation_missing_some_blocks(self, cluster):
        """An equation whose coefficient for a block is zero simply omits
        it; the tree still produces the right combination."""
        plan = RepairPlan(block_size=16)
        positions = [(i, i) for i in range(3)]
        eq = {0: 5, 2: 9}  # block 1 absent
        [result] = build_inner_trees(plan, positions, [eq], prefix="t")
        payloads = self.payloads(range(3))
        store = {i: {block_key(i): payloads[i]} for i in range(3)}
        if plan.ops:
            plan.mark_output(0, result.node, result.key)
            execute_plan(plan, cluster, store)
        got = scale(result.coeff, store[result.node][result.key])
        expected = scale(5, payloads[0]) ^ scale(9, payloads[2])
        np.testing.assert_array_equal(got, expected)

    def test_all_equations_empty(self):
        plan = RepairPlan(block_size=16)
        results = build_inner_trees(plan, [(0, 0)], [{}, {}], prefix="t")
        assert results == [None, None]


class TestCrossGather:
    def sources(self, count):
        # Nodes 1..count of the 4x6 fixture cluster (node 0 is the target).
        return [
            InnerResult(key=f"im{i}", node=i + 1, dep=None) for i in range(count)
        ]

    def test_no_sources(self):
        plan = RepairPlan(block_size=16)
        assert build_cross_gather(plan, 0, [], prefix="x") == []
        assert len(plan.ops) == 0

    @pytest.mark.parametrize("m,rounds", [(1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4)])
    def test_round_count_logarithmic(self, cluster, m, rounds):
        """Arrivals at the target = aggregation rounds = ceil(log2(m + 1))."""
        plan = RepairPlan(block_size=16)
        arrivals = build_cross_gather(plan, 0, self.sources(m), prefix="x")
        assert len(arrivals) == rounds == math.ceil(math.log2(m + 1))

    def test_direct_gather_one_send_per_source(self, cluster):
        plan = RepairPlan(block_size=16)
        arrivals = build_direct_gather(plan, 0, self.sources(5), prefix="x")
        assert len(arrivals) == 5
        assert all(op.dst == 0 for op in plan.sends())

    def test_gather_preserves_payload_value(self, cluster):
        """XOR of arrivals equals XOR of all source payloads."""
        rng = np.random.default_rng(1)
        m = 5
        sources = self.sources(m)
        payloads = {s.key: rng.integers(0, 256, 8, dtype=np.uint8) for s in sources}
        plan = RepairPlan(block_size=8)
        arrivals = build_cross_gather(plan, 0, sources, prefix="x")
        store = {s.node: {s.key: payloads[s.key]} for s in sources}
        plan.mark_output(0, 0, arrivals[0].key)
        execute_plan(plan, cluster, store)
        got = np.zeros(8, dtype=np.uint8)
        for a in arrivals:
            got ^= scale(a.coeff, store[0][a.key])
        expected = np.zeros(8, dtype=np.uint8)
        for p in payloads.values():
            expected ^= p
        np.testing.assert_array_equal(got, expected)

    def test_pending_coefficients_applied_in_pair_combines(self, cluster):
        rng = np.random.default_rng(2)
        sources = [
            InnerResult(key="a", node=6, dep=None, coeff=3),
            InnerResult(key="b", node=12, dep=None, coeff=1),
            InnerResult(key="c", node=18, dep=None, coeff=7),
        ]
        payloads = {s.key: rng.integers(0, 256, 8, dtype=np.uint8) for s in sources}
        plan = RepairPlan(block_size=8)
        arrivals = build_cross_gather(plan, 0, sources, prefix="x")
        store = {s.node: {s.key: payloads[s.key]} for s in sources}
        plan.mark_output(0, 0, arrivals[0].key)
        execute_plan(plan, cluster, store)
        got = np.zeros(8, dtype=np.uint8)
        for a in arrivals:
            got ^= scale(a.coeff, store[0][a.key])
        expected = (
            scale(3, payloads["a"]) ^ payloads["b"] ^ scale(7, payloads["c"])
        )
        np.testing.assert_array_equal(got, expected)


class TestPreplacementHelpers:
    def test_p0_rack_detection(self):
        code = get_code(4, 2)
        cluster = Cluster.homogeneous(4, 4)
        rpr = RPRPlacement().place(cluster, 4, 2)
        contiguous = ContiguousPlacement().place(cluster, 4, 2)
        assert p0_rack_is_all_data(code, cluster, rpr)
        assert not p0_rack_is_all_data(code, cluster, contiguous)

    def test_p0_rack_no_parity_code(self):
        code = get_code(4, 0)
        cluster = Cluster.homogeneous(4, 4)
        placement = ContiguousPlacement(per_rack=1).place(cluster, 4, 0)
        assert not p0_rack_is_all_data(code, cluster, placement)

    def test_fast_path_applicability(self):
        code = get_code(6, 3)
        assert xor_fast_path_applicable(code, [2])
        assert not xor_fast_path_applicable(code, [6])      # parity
        assert not xor_fast_path_applicable(code, [0, 1])    # multi
        assert not xor_fast_path_applicable(get_code(4, 0), [0])

    def test_paper_probability(self):
        assert matrix_build_free_probability(get_code(10, 4)) == pytest.approx(0.1)
