"""Correctness and structural tests for the three repair schemes."""

import numpy as np
import pytest

from repro.cluster import SIMICS_BANDWIDTH
from repro.repair import (
    CARRepair,
    RepairPlanningError,
    RPRScheme,
    TraditionalRepair,
    execute_plan,
    initial_store_for,
    recovery_targets,
    simulate_repair,
)
from repro.rs import PAPER_SINGLE_FAILURE_CODES

from .conftest import make_context, make_stripe

ALL_SCHEMES = [TraditionalRepair(), CARRepair(), RPRScheme()]


def run_concrete(scheme, ctx, seed=0):
    stripe = make_stripe(ctx, seed)
    plan = scheme.plan(ctx)
    store = initial_store_for(stripe, ctx.placement, ctx.failed_blocks)
    result = execute_plan(plan, ctx.cluster, store)
    for b in ctx.failed_blocks:
        np.testing.assert_array_equal(result.recovered[b], stripe.get_payload(b))
    return plan, result


class TestRecoveryTargets:
    def test_target_in_failed_rack(self):
        ctx = make_context(6, 3, failed=[1])
        targets = recovery_targets(ctx)
        assert ctx.cluster.rack_of(targets[1]) == ctx.rack_of_block(1)

    def test_targets_are_spares(self):
        ctx = make_context(6, 3, failed=[0, 1])
        targets = recovery_targets(ctx)
        used = set(ctx.placement.block_to_node.values())
        for node in targets.values():
            assert node not in used

    def test_distinct_targets_for_same_rack_failures(self):
        ctx = make_context(8, 4, failed=[0, 1, 2])
        targets = recovery_targets(ctx)
        assert len(set(targets.values())) == 3


class TestSingleFailureCorrectness:
    @pytest.mark.parametrize("n,k", PAPER_SINGLE_FAILURE_CODES)
    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_every_data_failure_reconstructs(self, n, k, scheme):
        for f in range(n):
            ctx = make_context(n, k, failed=[f])
            run_concrete(scheme, ctx, seed=f)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_parity_failure_reconstructs(self, scheme):
        for f in [6, 7, 8]:
            ctx = make_context(6, 3, failed=[f])
            run_concrete(scheme, ctx, seed=f)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_contiguous_placement_also_works(self, scheme):
        for f in [0, 3, 5]:
            ctx = make_context(8, 4, failed=[f], placement="contiguous")
            run_concrete(scheme, ctx, seed=f)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_recovered_payload_lands_on_spare_in_failed_rack(self, scheme):
        ctx = make_context(6, 2, failed=[2])
        plan, _ = run_concrete(scheme, ctx)
        (node, _key) = plan.outputs[2]
        assert ctx.cluster.rack_of(node) == ctx.rack_of_block(2)


class TestMultiFailureCorrectness:
    CASES = [
        (6, 3, [0, 1]),
        (6, 3, [2, 7]),
        (8, 4, [0, 1, 2]),
        (8, 4, [0, 4, 9]),
        (8, 4, [0, 1, 2, 3]),
        (12, 4, [0, 4, 8]),
        (12, 4, [0, 1, 2, 3]),
        (12, 4, [10, 11, 13, 15]),
        (6, 2, [0, 1]),
        (8, 2, [3, 9]),
    ]

    @pytest.mark.parametrize("n,k,failed", CASES)
    def test_traditional_multi(self, n, k, failed):
        run_concrete(TraditionalRepair(), make_context(n, k, failed=failed))

    @pytest.mark.parametrize("n,k,failed", CASES)
    def test_rpr_multi(self, n, k, failed):
        run_concrete(RPRScheme(), make_context(n, k, failed=failed))

    def test_car_rejects_multi(self):
        ctx = make_context(6, 3, failed=[0, 1])
        with pytest.raises(RepairPlanningError):
            CARRepair().plan(ctx)


class TestPlanShapes:
    def test_traditional_sends_n_helpers_to_one_node(self):
        ctx = make_context(6, 2, failed=[1])
        plan = TraditionalRepair().plan(ctx)
        gathers = [op for op in plan.sends() if op.op_id.startswith("tra:gather")]
        assert len(gathers) == 6
        assert len({op.dst for op in gathers}) == 1

    def test_traditional_pays_matrix_build(self):
        ctx = make_context(6, 2, failed=[1])
        plan = TraditionalRepair().plan(ctx)
        builds = [c for c in plan.combines() if c.with_matrix_build]
        assert len(builds) == 1

    def test_car_one_cross_send_per_remote_rack(self):
        ctx = make_context(12, 4, failed=[1])
        plan = CARRepair().plan(ctx)
        cross = [
            op
            for op in plan.sends()
            if not ctx.cluster.same_rack(op.src, op.dst)
        ]
        # all cross sends go straight to the recovery node (no pipeline)
        assert len({op.dst for op in cross}) == 1

    def test_car_always_builds_matrix(self):
        ctx = make_context(6, 2, failed=[1])
        plan = CARRepair().plan(ctx)
        final = [c for c in plan.combines() if c.op_id.startswith("car:decode")]
        assert len(final) == 1 and final[0].with_matrix_build

    def test_rpr_single_data_failure_skips_matrix_build(self):
        """Pre-placement + XOR helper set: no decoding-matrix cost (§3.3)."""
        for n, k in PAPER_SINGLE_FAILURE_CODES:
            ctx = make_context(n, k, failed=[1], placement="rpr")
            plan = RPRScheme().plan(ctx)
            assert not any(c.with_matrix_build for c in plan.combines()), (n, k)

    def test_rpr_parity_failure_builds_matrix(self):
        ctx = make_context(6, 2, failed=[7])
        plan = RPRScheme().plan(ctx)
        assert any(c.with_matrix_build for c in plan.combines())

    def test_rpr_multi_failure_builds_matrix(self):
        ctx = make_context(8, 4, failed=[0, 1])
        plan = RPRScheme().plan(ctx)
        finals = [c for c in plan.combines() if c.op_id.endswith(":final")]
        assert len(finals) == 2
        assert all(c.with_matrix_build for c in finals)

    def test_rpr_cross_sends_form_pipeline(self):
        """RPR's cross sends do NOT all target the recovery node."""
        ctx = make_context(12, 4, failed=[1])
        plan = RPRScheme().plan(ctx)
        cross = [
            op for op in plan.sends() if not ctx.cluster.same_rack(op.src, op.dst)
        ]
        assert len({op.dst for op in cross}) > 1

    def test_prefer_xor_flag_off_may_build_matrix(self):
        ctx = make_context(6, 2, failed=[1], placement="contiguous")
        plan = RPRScheme(prefer_xor=False).plan(ctx)
        assert any(c.with_matrix_build for c in plan.combines())


class TestSimulatedOrdering:
    """The paper's headline inequalities under the Simics model."""

    @pytest.mark.parametrize("n,k", PAPER_SINGLE_FAILURE_CODES)
    def test_rpr_fastest_single_failure(self, n, k):
        ctx = make_context(n, k, failed=[1])
        times = {
            s.name: simulate_repair(s, ctx, SIMICS_BANDWIDTH).total_repair_time
            for s in ALL_SCHEMES
        }
        assert times["rpr"] <= times["car"] <= times["traditional"]

    @pytest.mark.parametrize("n,k", PAPER_SINGLE_FAILURE_CODES)
    def test_partial_decoding_traffic_equal_car_rpr(self, n, k):
        """Fig. 7: CAR and RPR move the same cross-rack volume."""
        ctx = make_context(n, k, failed=[1])
        car = simulate_repair(CARRepair(), ctx, SIMICS_BANDWIDTH)
        rpr = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        assert car.cross_rack_blocks == rpr.cross_rack_blocks
        tra = simulate_repair(TraditionalRepair(), ctx, SIMICS_BANDWIDTH)
        assert rpr.cross_rack_blocks <= tra.cross_rack_blocks

    def test_multi_failure_rpr_beats_traditional(self):
        for n, k, failed in [(6, 3, [0, 1]), (8, 4, [0, 1, 2]), (12, 4, [0, 4])]:
            ctx = make_context(n, k, failed=failed)
            tra = simulate_repair(TraditionalRepair(), ctx, SIMICS_BANDWIDTH)
            rpr = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
            assert rpr.total_repair_time < tra.total_repair_time

    def test_worst_case_traffic_not_reduced(self):
        """§4.3.2: with k failures RPR moves n blocks, same as traditional."""
        ctx = make_context(12, 4, failed=[0, 1, 2, 3])
        rpr = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        assert rpr.cross_rack_blocks == pytest.approx(12)

    def test_nonworst_traffic_formula(self):
        """§4.3.3: l failures in one rack move (n/k) * l intermediates."""
        for n, k, l in [(6, 3, 2), (8, 4, 2), (8, 4, 3), (12, 4, 2), (12, 4, 3)]:
            ctx = make_context(n, k, failed=list(range(l)))
            rpr = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
            assert rpr.cross_rack_blocks == pytest.approx((n // k) * l), (n, k, l)


class TestErrorHandling:
    def test_no_failed_blocks_rejected_by_schemes(self):
        """An empty failure set is a valid context (updates use it) but
        every repair scheme refuses to plan against it."""
        ctx = make_context(4, 2, failed=[])
        for scheme in ALL_SCHEMES:
            with pytest.raises(RepairPlanningError):
                scheme.plan(ctx)

    def test_too_many_failures_rejected(self):
        with pytest.raises(RepairPlanningError):
            make_context(4, 2, failed=[0, 1, 2])

    def test_out_of_range_failure_rejected(self):
        with pytest.raises(RepairPlanningError):
            make_context(4, 2, failed=[9])

    def test_duplicate_failures_rejected(self):
        with pytest.raises(RepairPlanningError):
            make_context(4, 2, failed=[1, 1])
