"""Tests for helper-block selection."""

from repro.repair import (
    first_n_helpers,
    group_survivors_by_rack,
    rack_aware_helpers,
    remote_rack_count,
)

from .conftest import make_context


class TestFirstN:
    def test_lowest_ids(self):
        ctx = make_context(4, 2, failed=[1])
        assert first_n_helpers(ctx) == [0, 2, 3, 4]

    def test_skips_failed(self):
        ctx = make_context(6, 3, failed=[0, 2])
        assert first_n_helpers(ctx) == [1, 3, 4, 5, 6, 7]


class TestGrouping:
    def test_groups_match_placement(self):
        ctx = make_context(4, 2, failed=[1])
        groups = group_survivors_by_rack(ctx)
        for rack, blocks in groups.items():
            for b in blocks:
                assert ctx.rack_of_block(b) == rack
        total = sum(len(v) for v in groups.values())
        assert total == ctx.code.width - 1


class TestRemoteRackCount:
    def test_recovery_rack_not_counted(self):
        ctx = make_context(4, 2, failed=[1])  # rack 0
        local = [b for b in ctx.surviving_blocks if ctx.rack_of_block(b) == 0]
        assert remote_rack_count(ctx, local) == 0

    def test_counts_distinct_remote_racks(self):
        ctx = make_context(4, 2, failed=[1])
        helpers = rack_aware_helpers(ctx)
        assert remote_rack_count(ctx, helpers) == 2


class TestRackAware:
    def test_returns_exactly_n(self):
        for n, k in [(4, 2), (6, 3), (8, 4), (12, 4)]:
            for failed in range(n + k):
                ctx = make_context(n, k, failed=[failed])
                helpers = rack_aware_helpers(ctx)
                assert len(helpers) == n
                assert failed not in helpers

    def test_prefers_xor_set_under_rpr_placement(self):
        """With pre-placement, a data failure selects other-data + P0."""
        for n, k in [(4, 2), (6, 2), (8, 2), (6, 3), (8, 4), (12, 4)]:
            ctx = make_context(n, k, failed=[1], placement="rpr")
            helpers = rack_aware_helpers(ctx, prefer_xor=True)
            expected = sorted([b for b in range(n) if b != 1] + [n])
            assert helpers == expected, (n, k, helpers)

    def test_xor_preference_never_adds_racks(self):
        for n, k in [(4, 2), (6, 3), (8, 4), (12, 4)]:
            for placement in ("rpr", "contiguous"):
                for f in range(n):
                    ctx = make_context(n, k, failed=[f], placement=placement)
                    with_xor = rack_aware_helpers(ctx, prefer_xor=True)
                    without = rack_aware_helpers(ctx, prefer_xor=False)
                    assert remote_rack_count(ctx, with_xor) <= remote_rack_count(
                        ctx, without
                    )

    def test_parity_failure_no_xor_path(self):
        ctx = make_context(6, 3, failed=[7])
        helpers = rack_aware_helpers(ctx, prefer_xor=True)
        assert len(helpers) == 6
        # eq. (6) does not apply to parity failures; greedy pick is used.
        assert helpers == rack_aware_helpers(ctx, prefer_xor=False)

    def test_multi_failure_selection(self):
        ctx = make_context(8, 4, failed=[0, 1, 5])
        helpers = rack_aware_helpers(ctx)
        assert len(helpers) == 8
        assert not set(helpers) & {0, 1, 5}

    def test_rack_aware_beats_or_ties_first_n_on_remote_racks(self):
        for n, k in [(6, 2), (8, 2), (6, 3), (8, 4), (12, 4)]:
            for f in range(n + k):
                ctx = make_context(n, k, failed=[f])
                aware = rack_aware_helpers(ctx)
                naive = first_n_helpers(ctx)
                assert remote_rack_count(ctx, aware) <= remote_rack_count(ctx, naive)

    def test_deterministic(self):
        ctx = make_context(12, 4, failed=[3])
        assert rack_aware_helpers(ctx) == rack_aware_helpers(ctx)
