"""Tests for the simulate_repair wrapper (plan → engine → outcome)."""

import pytest

from repro.cluster import SIMICS_BANDWIDTH, HierarchicalBandwidth
from repro.repair import RPRScheme, TraditionalRepair, simulate_repair

from .conftest import make_context


class TestRepairOutcome:
    def test_fields_populated(self):
        ctx = make_context(6, 2, failed=[1])
        outcome = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        assert outcome.scheme == "rpr"
        assert outcome.total_repair_time > 0
        assert outcome.cross_rack_bytes > 0
        assert outcome.intra_rack_bytes >= 0
        assert outcome.plan is not None
        assert outcome.sim.makespan == outcome.total_repair_time

    def test_cross_rack_blocks_unit(self):
        ctx = make_context(6, 2, failed=[1])
        outcome = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        assert outcome.cross_rack_blocks == pytest.approx(
            outcome.cross_rack_bytes / ctx.block_size
        )

    def test_uses_context_cost_model(self):
        """The matrix-build surcharge must show up in the makespan."""
        from repro.rs import MB, DecodeCostModel
        from dataclasses import replace

        base = make_context(6, 2, failed=[7])  # parity: matrix build
        slow = replace(
            base, cost_model=DecodeCostModel(xor_speed=MB, matrix_build_factor=100.0)
        )
        fast_outcome = simulate_repair(RPRScheme(), base, SIMICS_BANDWIDTH)
        slow_outcome = simulate_repair(RPRScheme(), slow, SIMICS_BANDWIDTH)
        assert slow_outcome.total_repair_time > fast_outcome.total_repair_time

    def test_bandwidth_model_drives_timing(self):
        ctx = make_context(6, 2, failed=[1])
        fast = simulate_repair(
            TraditionalRepair(), ctx, HierarchicalBandwidth(intra=1e9, cross=1e8)
        )
        slow = simulate_repair(
            TraditionalRepair(), ctx, HierarchicalBandwidth(intra=1e8, cross=1e7)
        )
        assert slow.total_repair_time == pytest.approx(
            10 * fast.total_repair_time, rel=0.2
        )

    def test_plan_is_fresh_per_call(self):
        ctx = make_context(6, 2, failed=[1])
        a = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        b = simulate_repair(RPRScheme(), ctx, SIMICS_BANDWIDTH)
        assert a.plan is not b.plan
        assert a.total_repair_time == b.total_repair_time
