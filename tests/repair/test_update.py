"""Tests for the parity-delta update path."""

import numpy as np
import pytest

from repro.cluster import SIMICS_BANDWIDTH
from repro.repair import (
    RepairPlanningError,
    apply_update_payloads,
    execute_plan,
    initial_store_for,
    plan_update,
)
from repro.sim import SimulationEngine

from .conftest import make_context, make_stripe


def run_update(ctx, stripe, block_id, new_payload):
    plan = plan_update(ctx, block_id)
    store = initial_store_for(stripe, ctx.placement, failed_blocks=[])
    data_node = ctx.node_of_block(block_id)
    store.setdefault(data_node, {})[f"update:new:{block_id}"] = new_payload
    result = execute_plan(plan, ctx.cluster, store)
    return plan, result


class TestUpdateCorrectness:
    def test_parities_refreshed_correctly(self):
        ctx = make_context(6, 3, failed=[0])  # failed_blocks unused by updates
        stripe = make_stripe(ctx)
        rng = np.random.default_rng(5)
        new_payload = rng.integers(0, 256, ctx.block_size, dtype=np.uint8)
        _, result = run_update(ctx, stripe, 2, new_payload)
        expected = apply_update_payloads(ctx.code, stripe, 2, new_payload)
        for bid, payload in expected.items():
            np.testing.assert_array_equal(result.recovered[bid], payload)

    def test_updated_stripe_is_valid_codeword(self):
        """After applying the plan's outputs, re-encoding must agree."""
        ctx = make_context(8, 4, failed=[0])
        stripe = make_stripe(ctx, seed=9)
        rng = np.random.default_rng(10)
        new_payload = rng.integers(0, 256, ctx.block_size, dtype=np.uint8)
        _, result = run_update(ctx, stripe, 5, new_payload)
        for bid, payload in result.recovered.items():
            stripe.set_payload(bid, payload)
        assert ctx.code.verify_stripe(stripe)

    def test_every_data_block_updatable(self):
        ctx = make_context(4, 2, failed=[0])
        stripe = make_stripe(ctx, seed=1)
        rng = np.random.default_rng(2)
        for block in range(4):
            new_payload = rng.integers(0, 256, ctx.block_size, dtype=np.uint8)
            _, result = run_update(ctx, stripe, block, new_payload)
            expected = apply_update_payloads(ctx.code, stripe, block, new_payload)
            for bid, payload in expected.items():
                np.testing.assert_array_equal(result.recovered[bid], payload)

    def test_identity_update_keeps_parities(self):
        """Rewriting identical content yields a zero delta: parities
        unchanged."""
        ctx = make_context(6, 2, failed=[0])
        stripe = make_stripe(ctx, seed=3)
        same = stripe.get_payload(1).copy()
        _, result = run_update(ctx, stripe, 1, same)
        for parity in [6, 7]:
            np.testing.assert_array_equal(
                result.recovered[parity], stripe.get_payload(parity)
            )


class TestUpdatePlanShape:
    def test_one_delta_send_per_remote_parity(self):
        ctx = make_context(6, 2, failed=[0])
        plan = plan_update(ctx, 1)
        sends = plan.sends()
        # both parities are remote from d1's node under either placement
        assert len(sends) == 2
        assert all(s.key == "update:delta:1" for s in sends)

    def test_same_node_parity_needs_no_send(self):
        """With RPR placement, P0 shares a rack (maybe a node? no — one
        block per node).  Construct a context where the updated block and
        P0 sit on the same node: impossible under one-block-per-node, so
        all parities always need a send; assert the invariant instead."""
        ctx = make_context(8, 4, failed=[0])
        plan = plan_update(ctx, 7)
        assert len(plan.sends()) == 4

    def test_parity_update_rejected(self):
        ctx = make_context(6, 2, failed=[0])
        with pytest.raises(RepairPlanningError):
            plan_update(ctx, 6)

    def test_outputs_cover_block_and_parities(self):
        ctx = make_context(6, 3, failed=[0])
        plan = plan_update(ctx, 4)
        assert set(plan.outputs) == {4, 6, 7, 8}


class TestUpdateTiming:
    def test_simulated_update_time(self):
        """Update time ~ slowest delta path (cross-rack transfer bound)."""
        ctx = make_context(6, 2, failed=[0])
        plan = plan_update(ctx, 1)
        graph = plan.to_job_graph(ctx.cost_model)
        sim = SimulationEngine(ctx.cluster, SIMICS_BANDWIDTH).run(graph)
        t_c = ctx.block_size / SIMICS_BANDWIDTH.cross
        # two serial cross sends from one uplink at worst + combines
        assert sim.makespan <= 2 * t_c + 1.0
        assert sim.makespan >= t_c

    def test_preplacement_update_traffic_not_worse(self):
        """§3.3's neutrality claim, measured on the update path: moving
        P0 next to data does not increase average cross-rack update
        traffic."""
        from repro.metrics import TrafficLedger

        def avg_cross_blocks(placement_kind):
            total = 0.0
            ctx0 = make_context(6, 2, failed=[0], placement=placement_kind)
            for block in range(6):
                plan = plan_update(ctx0, block)
                graph = plan.to_job_graph(ctx0.cost_model)
                sim = SimulationEngine(ctx0.cluster, SIMICS_BANDWIDTH).run(graph)
                ledger = TrafficLedger.from_sim(sim, ctx0.cluster)
                total += ledger.cross_rack_bytes / ctx0.block_size
            return total / 6

        assert avg_cross_blocks("rpr") <= avg_cross_blocks("contiguous") + 1e-9
