"""Tests for RSCode construction and encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rs import PAPER_SINGLE_FAILURE_CODES, RSCode, Stripe, get_code


def random_data(rng, n, size=32):
    return [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(n)]


class TestConstruction:
    @pytest.mark.parametrize("n,k", PAPER_SINGLE_FAILURE_CODES)
    def test_paper_codes_construct(self, n, k):
        code = RSCode(n, k)
        assert code.width == n + k

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            RSCode(0, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            RSCode(4, -1)

    def test_too_wide(self):
        with pytest.raises(ValueError):
            RSCode(200, 100)

    def test_storage_overhead(self):
        assert RSCode(4, 2).storage_overhead == pytest.approx(0.5)
        assert RSCode(12, 4).storage_overhead == pytest.approx(1 / 3)

    def test_generator_immutable(self):
        code = RSCode(4, 2)
        with pytest.raises(ValueError):
            code.generator[0, 0] = 5

    def test_coding_matrix_shape(self):
        code = RSCode(6, 3)
        assert code.coding_matrix().shape == (3, 6)

    def test_first_parity_row_all_ones(self):
        code = RSCode(8, 4)
        assert np.all(code.generator_row(8) == 1)

    def test_generator_row_bounds(self):
        code = RSCode(4, 2)
        with pytest.raises(ValueError):
            code.generator_row(6)

    def test_equality_and_hash(self):
        assert RSCode(4, 2) == RSCode(4, 2)
        assert RSCode(4, 2) != RSCode(4, 3)
        assert hash(RSCode(4, 2)) == hash(RSCode(4, 2))

    def test_get_code_cached(self):
        assert get_code(6, 3) is get_code(6, 3)


class TestEncode:
    def test_systematic(self):
        rng = np.random.default_rng(0)
        code = RSCode(4, 2)
        data = random_data(rng, 4)
        blocks = code.encode(data)
        for i in range(4):
            np.testing.assert_array_equal(blocks[i], data[i])

    def test_p0_is_xor_of_data(self):
        """Paper eq. (2): the first parity is the plain XOR of the data."""
        rng = np.random.default_rng(1)
        for n, k in PAPER_SINGLE_FAILURE_CODES:
            code = RSCode(n, k)
            data = random_data(rng, n)
            blocks = code.encode(data)
            expected = data[0].copy()
            for d in data[1:]:
                expected ^= d
            np.testing.assert_array_equal(blocks[n], expected)

    def test_wrong_block_count_rejected(self):
        code = RSCode(4, 2)
        with pytest.raises(ValueError):
            code.encode([np.zeros(8, dtype=np.uint8)] * 3)

    def test_encode_stripe(self):
        rng = np.random.default_rng(2)
        code = RSCode(4, 2)
        stripe = code.encode_stripe(random_data(rng, 4, size=16))
        assert isinstance(stripe, Stripe)
        assert stripe.block_size == 16
        assert all(stripe.has_payload(b) for b in stripe.block_ids())

    def test_verify_stripe_accepts_valid(self):
        rng = np.random.default_rng(3)
        code = RSCode(6, 3)
        stripe = code.encode_stripe(random_data(rng, 6))
        assert code.verify_stripe(stripe)

    def test_verify_stripe_rejects_corruption(self):
        rng = np.random.default_rng(4)
        code = RSCode(6, 3)
        stripe = code.encode_stripe(random_data(rng, 6))
        payload = stripe.get_payload(7).copy()
        payload[0] ^= 0xFF
        stripe.set_payload(7, payload)
        assert not code.verify_stripe(stripe)

    def test_verify_stripe_shape_mismatch(self):
        rng = np.random.default_rng(5)
        stripe = RSCode(4, 2).encode_stripe(random_data(rng, 4))
        with pytest.raises(ValueError):
            RSCode(6, 2).verify_stripe(stripe)

    @given(st.integers(0, 2**32 - 1), st.sampled_from(PAPER_SINGLE_FAILURE_CODES))
    @settings(max_examples=30, deadline=None)
    def test_encoding_is_linear(self, seed, nk):
        """encode(a ^ b) == encode(a) ^ encode(b): the partial-decoding basis."""
        n, k = nk
        rng = np.random.default_rng(seed)
        code = get_code(n, k)
        a = random_data(rng, n, size=8)
        b = random_data(rng, n, size=8)
        summed = [x ^ y for x, y in zip(a, b)]
        enc_sum = code.encode(summed)
        enc_a = code.encode(a)
        enc_b = code.encode(b)
        for i in range(code.width):
            np.testing.assert_array_equal(enc_sum[i], enc_a[i] ^ enc_b[i])
