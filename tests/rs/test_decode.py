"""Tests for recovery-equation derivation and reference decoding."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import linear_combine
from repro.rs import (
    InsufficientHelpersError,
    PAPER_SINGLE_FAILURE_CODES,
    RecoveryEquation,
    RSCode,
    decode_blocks,
    get_code,
    recovery_equations,
    xor_recovery_equation,
)


def encoded_payloads(code, rng, size=24):
    data = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(code.n)]
    return {i: b for i, b in enumerate(code.encode(data))}


class TestRecoveryEquationObject:
    def test_duplicate_helpers_rejected(self):
        with pytest.raises(ValueError):
            RecoveryEquation(target=0, terms=((1, 1), (1, 2)))

    def test_zero_coefficient_rejected(self):
        with pytest.raises(ValueError):
            RecoveryEquation(target=0, terms=((1, 0),))

    def test_self_reference_rejected(self):
        with pytest.raises(ValueError):
            RecoveryEquation(target=1, terms=((1, 1),))

    def test_is_xor_only(self):
        assert RecoveryEquation(target=0, terms=((1, 1), (2, 1))).is_xor_only
        assert not RecoveryEquation(target=0, terms=((1, 1), (2, 3))).is_xor_only

    def test_coefficient_lookup(self):
        eq = RecoveryEquation(target=0, terms=((1, 5), (2, 7)))
        assert eq.coefficient(1) == 5
        assert eq.coefficient(9) == 0

    def test_restricted_to(self):
        eq = RecoveryEquation(target=0, terms=((1, 5), (2, 7), (3, 9)))
        sub = eq.restricted_to({1, 3})
        assert sub.terms == ((1, 5), (3, 9))
        assert sub.target == 0


class TestXorEquation:
    def test_matches_eq6(self):
        code = RSCode(4, 2)
        eq = xor_recovery_equation(code, 2)
        assert eq.target == 2
        assert eq.helper_ids == (0, 1, 3, 4)  # other data + P0 (block 4)
        assert eq.is_xor_only
        assert not eq.requires_matrix_build

    def test_reconstructs_data(self):
        rng = np.random.default_rng(0)
        code = RSCode(6, 3)
        payloads = encoded_payloads(code, rng)
        for f in range(code.n):
            eq = xor_recovery_equation(code, f)
            got = linear_combine(
                [c for _, c in eq.terms], [payloads[h] for h, _ in eq.terms]
            )
            np.testing.assert_array_equal(got, payloads[f])

    def test_parity_target_rejected(self):
        code = RSCode(4, 2)
        with pytest.raises(ValueError):
            xor_recovery_equation(code, 4)

    def test_no_parity_code_rejected(self):
        with pytest.raises(ValueError):
            xor_recovery_equation(RSCode(4, 0), 0)


class TestRecoveryEquations:
    def test_single_data_failure(self):
        rng = np.random.default_rng(1)
        code = RSCode(4, 2)
        payloads = encoded_payloads(code, rng)
        [eq] = recovery_equations(code, [1], [0, 2, 3, 4])
        got = linear_combine(
            [c for _, c in eq.terms], [payloads[h] for h, _ in eq.terms]
        )
        np.testing.assert_array_equal(got, payloads[1])

    def test_eq6_helper_set_detected_as_xor_only(self):
        """With helpers = other data + P0, the derived equation is eq. (6)."""
        code = RSCode(6, 2)
        helpers = [0, 1, 3, 4, 5, 6]  # data minus block 2, plus P0 (block 6)
        [eq] = recovery_equations(code, [2], helpers)
        assert eq.is_xor_only
        assert not eq.requires_matrix_build
        ref = xor_recovery_equation(code, 2)
        assert eq.terms == ref.terms

    def test_parity_failure(self):
        rng = np.random.default_rng(2)
        code = RSCode(4, 2)
        payloads = encoded_payloads(code, rng)
        [eq] = recovery_equations(code, [5], [0, 1, 2, 3])
        got = linear_combine(
            [c for _, c in eq.terms], [payloads[h] for h, _ in eq.terms]
        )
        np.testing.assert_array_equal(got, payloads[5])

    @pytest.mark.parametrize("n,k", [(4, 2), (6, 3), (8, 4)])
    def test_all_single_failures_all_helper_sets(self, n, k):
        """Exhaustive: every single failure, every helper set, reconstructs."""
        rng = np.random.default_rng(3)
        code = get_code(n, k)
        payloads = encoded_payloads(code, rng, size=8)
        for f in range(code.width):
            survivors = [b for b in range(code.width) if b != f]
            for helpers in itertools.combinations(survivors, n):
                [eq] = recovery_equations(code, [f], list(helpers))
                got = linear_combine(
                    [c for _, c in eq.terms], [payloads[h] for h, _ in eq.terms]
                )
                np.testing.assert_array_equal(got, payloads[f])

    def test_multi_failure_equations(self):
        rng = np.random.default_rng(4)
        code = RSCode(8, 4)
        payloads = encoded_payloads(code, rng)
        failed = [1, 3, 6]
        helpers = [0, 2, 4, 5, 7, 8, 9, 10]
        eqs = recovery_equations(code, failed, helpers)
        assert [e.target for e in eqs] == failed
        for eq in eqs:
            got = linear_combine(
                [c for _, c in eq.terms], [payloads[h] for h, _ in eq.terms]
            )
            np.testing.assert_array_equal(got, payloads[eq.target])
            assert eq.requires_matrix_build

    def test_equation_excludes_failed_blocks(self):
        """Eq. (8) note: helper side never contains a failed block."""
        code = RSCode(8, 4)
        failed = [0, 1, 2, 3]
        helpers = [4, 5, 6, 7, 8, 9, 10, 11]
        for eq in recovery_equations(code, failed, helpers):
            assert not set(eq.helper_ids) & set(failed)

    def test_too_many_failures_rejected(self):
        code = RSCode(4, 2)
        with pytest.raises(ValueError):
            recovery_equations(code, [0, 1, 2], [3, 4, 5])

    def test_wrong_helper_count_rejected(self):
        code = RSCode(4, 2)
        with pytest.raises(InsufficientHelpersError):
            recovery_equations(code, [0], [1, 2, 3])

    def test_overlapping_failed_and_helpers_rejected(self):
        code = RSCode(4, 2)
        with pytest.raises(ValueError):
            recovery_equations(code, [0], [0, 1, 2, 3])

    def test_out_of_range_ids_rejected(self):
        code = RSCode(4, 2)
        with pytest.raises(ValueError):
            recovery_equations(code, [9], [0, 1, 2, 3])

    def test_duplicate_failed_rejected(self):
        code = RSCode(4, 2)
        with pytest.raises(ValueError):
            recovery_equations(code, [0, 0], [1, 2, 3, 4])


class TestDecodeBlocks:
    @given(
        st.sampled_from(PAPER_SINGLE_FAILURE_CODES),
        st.integers(0, 2**32 - 1),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random_failures(self, nk, seed, data):
        n, k = nk
        rng = np.random.default_rng(seed)
        code = get_code(n, k)
        payloads = encoded_payloads(code, rng, size=8)
        l = data.draw(st.integers(1, k))
        failed = sorted(
            data.draw(
                st.sets(st.integers(0, code.width - 1), min_size=l, max_size=l)
            )
        )
        available = {b: p for b, p in payloads.items() if b not in failed}
        recovered = decode_blocks(code, available, failed)
        for f in failed:
            np.testing.assert_array_equal(recovered[f], payloads[f])

    def test_insufficient_survivors(self):
        rng = np.random.default_rng(5)
        code = RSCode(4, 2)
        payloads = encoded_payloads(code, rng)
        available = {b: payloads[b] for b in [0, 1, 2]}
        with pytest.raises(InsufficientHelpersError):
            decode_blocks(code, available, [3])
