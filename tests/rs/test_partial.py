"""Tests for partial decoding (eq. (4) / eq. (9))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rs import (
    PAPER_SINGLE_FAILURE_CODES,
    combine_intermediates,
    get_code,
    recovery_equations,
    slice_equation_by_group,
    xor_recovery_equation,
)


def encoded_payloads(code, rng, size=16):
    data = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(code.n)]
    return {i: b for i, b in enumerate(code.encode(data))}


def round_robin_groups(block_ids, q):
    return {b: b % q for b in block_ids}


class TestSliceEquation:
    def test_paper_eq4_example(self):
        """RS(4,2), D2 failed, helpers D0 D1 D3 P0 split into two pairs."""
        rng = np.random.default_rng(0)
        code = get_code(4, 2)
        payloads = encoded_payloads(code, rng)
        eq = xor_recovery_equation(code, 2)  # helpers 0, 1, 3, 4
        groups = {0: "g0", 1: "g0", 3: "g1", 4: "g1"}
        slices = slice_equation_by_group(eq, groups)
        assert set(slices) == {"g0", "g1"}
        i0 = slices["g0"].materialise(payloads)
        i1 = slices["g1"].materialise(payloads)
        np.testing.assert_array_equal(i0, payloads[0] ^ payloads[1])
        np.testing.assert_array_equal(i1, payloads[3] ^ payloads[4])
        np.testing.assert_array_equal(i0 ^ i1, payloads[2])

    def test_groups_without_helpers_absent(self):
        code = get_code(4, 2)
        eq = xor_recovery_equation(code, 0)
        groups = {b: 0 for b in eq.helper_ids}
        slices = slice_equation_by_group(eq, groups)
        assert set(slices) == {0}

    def test_missing_group_assignment_raises(self):
        code = get_code(4, 2)
        eq = xor_recovery_equation(code, 0)
        with pytest.raises(KeyError):
            slice_equation_by_group(eq, {})

    def test_slice_metadata(self):
        code = get_code(6, 3)
        eq = xor_recovery_equation(code, 1)
        slices = slice_equation_by_group(eq, round_robin_groups(eq.helper_ids, 3))
        for group, sl in slices.items():
            assert sl.group == group
            assert sl.target == 1
            assert sl.is_xor_only

    @given(
        st.sampled_from(PAPER_SINGLE_FAILURE_CODES),
        st.integers(0, 2**32 - 1),
        st.integers(1, 5),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_slices_xor_to_target(self, nk, seed, q, data):
        """Property: for any grouping, intermediates XOR to the lost block."""
        n, k = nk
        rng = np.random.default_rng(seed)
        code = get_code(n, k)
        payloads = encoded_payloads(code, rng, size=8)
        failed = data.draw(st.integers(0, code.width - 1))
        survivors = [b for b in range(code.width) if b != failed]
        helpers = sorted(data.draw(st.permutations(survivors)))[:n]
        [eq] = recovery_equations(code, [failed], helpers)
        groups = {h: rng.integers(0, q) for h in eq.helper_ids}
        slices = slice_equation_by_group(eq, groups)
        intermediates = [sl.materialise(payloads) for sl in slices.values()]
        np.testing.assert_array_equal(
            combine_intermediates(intermediates), payloads[failed]
        )

    def test_multi_failure_slices(self):
        """Eq. (9): per sub-equation, per-rack intermediates XOR to the target."""
        rng = np.random.default_rng(1)
        code = get_code(8, 4)
        payloads = encoded_payloads(code, rng)
        failed = [0, 5]
        helpers = [1, 2, 3, 4, 6, 7, 8, 9]
        groups = round_robin_groups(range(code.width), 3)
        for eq in recovery_equations(code, failed, helpers):
            slices = slice_equation_by_group(eq, groups)
            intermediates = [sl.materialise(payloads) for sl in slices.values()]
            np.testing.assert_array_equal(
                combine_intermediates(intermediates), payloads[eq.target]
            )


class TestCombineIntermediates:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_intermediates([])

    def test_single_identity(self):
        b = np.array([1, 2, 3], dtype=np.uint8)
        np.testing.assert_array_equal(combine_intermediates([b]), b)

    def test_pairwise_xor(self):
        a = np.array([0xF0], dtype=np.uint8)
        b = np.array([0x0F], dtype=np.uint8)
        np.testing.assert_array_equal(
            combine_intermediates([a, b]), np.array([0xFF], dtype=np.uint8)
        )
