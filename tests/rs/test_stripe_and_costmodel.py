"""Tests for the Stripe container and decode cost models."""

import numpy as np
import pytest

from repro.rs import (
    EC2_DECODE,
    MB,
    SIMICS_DECODE,
    BlockKind,
    DecodeCostModel,
    Stripe,
    block_kind,
    parity_index,
)


class TestBlockHelpers:
    def test_block_kind(self):
        assert block_kind(0, 4) == BlockKind.DATA
        assert block_kind(3, 4) == BlockKind.DATA
        assert block_kind(4, 4) == BlockKind.PARITY

    def test_block_kind_negative(self):
        with pytest.raises(ValueError):
            block_kind(-1, 4)

    def test_parity_index(self):
        assert parity_index(4, 4) == 0
        assert parity_index(6, 4) == 2

    def test_parity_index_on_data_block(self):
        with pytest.raises(ValueError):
            parity_index(2, 4)


class TestStripe:
    def test_shape_properties(self):
        s = Stripe(6, 3, 128)
        assert s.width == 9
        assert s.data_ids() == list(range(6))
        assert s.parity_ids() == [6, 7, 8]
        assert list(s.block_ids()) == list(range(9))

    def test_kind(self):
        s = Stripe(4, 2, 8)
        assert s.kind(0) == BlockKind.DATA
        assert s.kind(5) == BlockKind.PARITY

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Stripe(0, 2, 8)
        with pytest.raises(ValueError):
            Stripe(4, 2, 0)

    def test_payload_lifecycle(self):
        s = Stripe(4, 2, 4)
        payload = np.array([1, 2, 3, 4], dtype=np.uint8)
        assert not s.has_payload(0)
        s.set_payload(0, payload)
        assert s.has_payload(0)
        np.testing.assert_array_equal(s.get_payload(0), payload)
        s.drop_payload(0)
        assert not s.has_payload(0)
        with pytest.raises(KeyError):
            s.get_payload(0)

    def test_drop_missing_payload_is_noop(self):
        Stripe(4, 2, 4).drop_payload(1)

    def test_wrong_payload_size_rejected(self):
        s = Stripe(4, 2, 4)
        with pytest.raises(ValueError):
            s.set_payload(0, np.zeros(5, dtype=np.uint8))

    def test_wrong_payload_dtype_rejected(self):
        s = Stripe(4, 2, 4)
        with pytest.raises(ValueError):
            s.set_payload(0, np.zeros(4, dtype=np.float64))

    def test_out_of_range_block_id(self):
        s = Stripe(4, 2, 4)
        with pytest.raises(ValueError):
            s.get_payload(6)

    def test_constructor_validates_payloads(self):
        with pytest.raises(ValueError):
            Stripe(2, 1, 4, payloads={0: np.zeros(3, dtype=np.uint8)})


class TestDecodeCostModel:
    def test_factor_applies_only_with_build(self):
        m = DecodeCostModel(xor_speed=100.0, matrix_build_factor=4.0)
        assert m.decode_time(100, with_matrix_build=False) == pytest.approx(1.0)
        assert m.decode_time(100, with_matrix_build=True) == pytest.approx(4.0)
        assert m.time_without_build(100) == pytest.approx(1.0)
        assert m.time_with_build(100) == pytest.approx(4.0)

    def test_zero_bytes(self):
        m = DecodeCostModel(xor_speed=10.0)
        assert m.decode_time(0, with_matrix_build=True) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DecodeCostModel(xor_speed=10.0).decode_time(-1, with_matrix_build=False)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DecodeCostModel(xor_speed=0)
        with pytest.raises(ValueError):
            DecodeCostModel(xor_speed=1, matrix_build_factor=0.5)

    def test_simics_calibration(self):
        """~1000 MB/s decode; a 256 MB block takes ~0.26 s without build."""
        t = SIMICS_DECODE.time_without_build(256 * MB)
        assert t == pytest.approx(0.256)
        assert SIMICS_DECODE.time_with_build(256 * MB) == pytest.approx(4 * t)

    def test_ec2_calibration(self):
        """Paper §5.2.1: 256 MB decodes in ~2.5 s optimised, ~20 s traditional."""
        assert EC2_DECODE.time_without_build(256 * MB) == pytest.approx(2.5)
        assert EC2_DECODE.time_with_build(256 * MB) == pytest.approx(20.0)
