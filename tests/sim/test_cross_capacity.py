"""Tests for the aggregation-switch capacity cap."""

import pytest

from repro.cluster import Cluster, HierarchicalBandwidth
from repro.sim import JobGraph, SimulationEngine


@pytest.fixture
def cluster():
    return Cluster.homogeneous(4, 3)


BW = HierarchicalBandwidth(intra=100.0, cross=10.0)


def three_parallel_cross(cluster):
    """Three cross transfers over fully disjoint port pairs."""
    g = JobGraph()
    g.add_transfer("a", 0, 3, 100)
    g.add_transfer("b", 6, 9, 100)
    g.add_transfer("c", 1, 4, 100)
    return g


class TestCapacity:
    def test_unlimited_by_default(self, cluster):
        engine = SimulationEngine(cluster, BW)
        assert engine.run(three_parallel_cross(cluster)).makespan == pytest.approx(
            10.0
        )

    def test_cap_one_serialises_everything(self, cluster):
        engine = SimulationEngine(cluster, BW, cross_capacity=1)
        assert engine.run(three_parallel_cross(cluster)).makespan == pytest.approx(
            30.0
        )

    def test_cap_two(self, cluster):
        engine = SimulationEngine(cluster, BW, cross_capacity=2)
        assert engine.run(three_parallel_cross(cluster)).makespan == pytest.approx(
            20.0
        )

    def test_intra_transfers_unaffected(self, cluster):
        engine = SimulationEngine(cluster, BW, cross_capacity=1)
        g = JobGraph()
        g.add_transfer("x", 0, 1, 100)
        g.add_transfer("y", 3, 4, 100)
        g.add_transfer("z", 6, 7, 100)
        assert engine.run(g).makespan == pytest.approx(1.0)

    def test_mixed_traffic(self, cluster):
        engine = SimulationEngine(cluster, BW, cross_capacity=1)
        g = JobGraph()
        g.add_transfer("cross1", 0, 3, 100)   # 10 s
        g.add_transfer("cross2", 6, 9, 100)   # waits for token
        g.add_transfer("intra", 1, 2, 100)    # 1 s, free to go
        result = engine.run(g)
        assert result.timings["intra"].start == 0.0
        assert result.makespan == pytest.approx(20.0)

    def test_token_released_on_completion(self, cluster):
        engine = SimulationEngine(cluster, BW, cross_capacity=1)
        g = JobGraph()
        g.add_transfer("first", 0, 3, 50)     # 5 s
        g.add_transfer("second", 6, 9, 50, deps=["first"])
        result = engine.run(g)
        assert result.timings["second"].start == pytest.approx(5.0)

    def test_invalid_capacity(self, cluster):
        with pytest.raises(ValueError):
            SimulationEngine(cluster, BW, cross_capacity=0)

    def test_rpr_degrades_gracefully_under_tight_switch(self, cluster):
        """RPR's pipeline needs concurrent cross transfers; with the
        switch capped at 1 it falls back toward CAR-like serial timing
        but must never beat physics (>= uncapped time)."""
        from repro.experiments import build_simics_environment, context_for
        from repro.repair import RPRScheme

        env = build_simics_environment(12, 4)
        ctx = context_for(env, [1])
        plan = RPRScheme().plan(ctx)
        graph = plan.to_job_graph(ctx.cost_model)
        free = SimulationEngine(env.cluster, env.bandwidth).run(graph)
        graph2 = RPRScheme().plan(ctx).to_job_graph(ctx.cost_model)
        tight = SimulationEngine(
            env.cluster, env.bandwidth, cross_capacity=1
        ).run(graph2)
        assert tight.makespan >= free.makespan - 1e-9
        assert tight.cross_rack_bytes() == free.cross_rack_bytes()
