"""Tests for the discrete-event engine: timing, ports, determinism."""

import pytest

from repro.cluster import Cluster, HierarchicalBandwidth
from repro.sim import EventKind, JobGraph, SimulationEngine


@pytest.fixture
def cluster():
    # 3 racks x 4 nodes; node ids rack-major (0-3, 4-7, 8-11).
    return Cluster.homogeneous(3, 4)


@pytest.fixture
def engine(cluster):
    # intra 100 B/s, cross 10 B/s: a 100-byte block takes 1 s / 10 s.
    return SimulationEngine(cluster, HierarchicalBandwidth(intra=100.0, cross=10.0))


class TestBasics:
    def test_empty_graph(self, engine):
        result = engine.run(JobGraph())
        assert result.makespan == 0.0
        assert result.events == []

    def test_single_intra_transfer(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        result = engine.run(g)
        assert result.makespan == pytest.approx(1.0)
        assert result.intra_rack_bytes() == 100
        assert result.cross_rack_bytes() == 0

    def test_single_cross_transfer(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 4, 100)
        result = engine.run(g)
        assert result.makespan == pytest.approx(10.0)
        assert result.cross_rack_bytes() == 100

    def test_compute_duration(self, engine):
        g = JobGraph()
        g.add_compute("c", 0, 2.5)
        assert engine.run(g).makespan == pytest.approx(2.5)

    def test_dependency_ordering(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        g.add_compute("c", 1, 1.0, deps=["t"])
        result = engine.run(g)
        assert result.timings["c"].start == pytest.approx(1.0)
        assert result.makespan == pytest.approx(2.0)

    def test_unknown_node_rejected(self, engine):
        g = JobGraph()
        g.add_compute("c", 99, 1.0)
        with pytest.raises(KeyError):
            engine.run(g)


class TestPortContention:
    def test_download_port_serialises(self, engine):
        """Two senders to one receiver: transfers serialise (§2.3)."""
        g = JobGraph()
        g.add_transfer("a", 4, 0, 100)
        g.add_transfer("b", 8, 0, 100)
        result = engine.run(g)
        assert result.makespan == pytest.approx(20.0)
        ta, tb = result.timings["a"], result.timings["b"]
        assert {ta.start, tb.start} == {0.0, 10.0}

    def test_upload_port_serialises(self, engine):
        g = JobGraph()
        g.add_transfer("a", 0, 4, 100)
        g.add_transfer("b", 0, 8, 100)
        assert engine.run(g).makespan == pytest.approx(20.0)

    def test_disjoint_ports_parallel(self, engine):
        """Distinct src/dst pairs overlap fully (the pipeline's enabler)."""
        g = JobGraph()
        g.add_transfer("a", 0, 4, 100)
        g.add_transfer("b", 8, 1, 100)
        result = engine.run(g)
        assert result.makespan == pytest.approx(10.0)

    def test_full_duplex(self, engine):
        """A node can upload and download at the same time."""
        g = JobGraph()
        g.add_transfer("up", 0, 4, 100)
        g.add_transfer("down", 8, 0, 100)
        assert engine.run(g).makespan == pytest.approx(10.0)

    def test_cpu_serialises(self, engine):
        g = JobGraph()
        g.add_compute("a", 0, 1.0)
        g.add_compute("b", 0, 1.0)
        assert engine.run(g).makespan == pytest.approx(2.0)

    def test_cpu_and_ports_independent(self, engine):
        g = JobGraph()
        g.add_compute("c", 0, 10.0)
        g.add_transfer("t", 0, 1, 100)
        assert engine.run(g).makespan == pytest.approx(10.0)

    def test_never_two_jobs_on_one_port(self, engine):
        """Invariant check over the trace: per-port occupancy <= 1."""
        g = JobGraph()
        for i, dst in enumerate([1, 2, 3]):
            g.add_transfer(f"in{i}", dst, 0, 50)
            g.add_transfer(f"out{i}", 0, dst, 50)
        result = engine.run(g)
        open_up = open_down = 0
        for e in sorted(result.events, key=lambda e: (e.time, "start" in e.kind)):
            if e.kind == EventKind.TRANSFER_START:
                if e.node == 0:
                    open_up += 1
                if e.peer == 0:
                    open_down += 1
            elif e.kind == EventKind.TRANSFER_END:
                if e.node == 0:
                    open_up -= 1
                if e.peer == 0:
                    open_down -= 1
            assert open_up <= 1 and open_down <= 1


class TestGreedyBehaviour:
    def test_fifo_tiebreak_is_insertion_order(self, engine):
        """Equal-ready jobs start in insertion order when contending."""
        g = JobGraph()
        g.add_transfer("first", 4, 0, 100)
        g.add_transfer("second", 8, 0, 100)
        result = engine.run(g)
        assert result.timings["first"].start == 0.0
        assert result.timings["second"].start == pytest.approx(10.0)

    def test_backfill_when_port_frees(self, engine):
        """A dependent job starts the moment its port frees (pipelining)."""
        g = JobGraph()
        g.add_transfer("long", 4, 0, 200)        # 20 s holding r1n0 uplink? no: 4->0
        g.add_transfer("short", 5, 1, 100)       # parallel, 10 s
        g.add_transfer("chained", 5, 0, 100, deps=["short"])  # needs node 0 downlink
        result = engine.run(g)
        # "chained" is ready at 10 s but node 0's downlink frees at 20 s.
        assert result.timings["chained"].start == pytest.approx(20.0)
        assert result.makespan == pytest.approx(30.0)

    def test_simultaneous_completions_deterministic(self, engine):
        g = JobGraph()
        g.add_transfer("a", 4, 0, 100)
        g.add_transfer("b", 5, 1, 100)
        g.add_compute("after", 0, 1.0, deps=["a", "b"])
        result = engine.run(g)
        assert result.timings["after"].start == pytest.approx(10.0)

    def test_repeatability(self, engine):
        def build():
            g = JobGraph()
            for i in range(6):
                g.add_transfer(f"t{i}", 4 + i % 4, i % 3, 100)
            for i in range(3):
                g.add_compute(f"c{i}", i, 0.5, deps=[f"t{i}", f"t{i + 3}"])
            return g

        r1 = engine.run(build())
        r2 = engine.run(build())
        assert r1.makespan == r2.makespan
        assert {j: (t.start, t.end) for j, t in r1.timings.items()} == {
            j: (t.start, t.end) for j, t in r2.timings.items()
        }


class TestResultAccounting:
    def test_traffic_split(self, engine):
        g = JobGraph()
        g.add_transfer("intra", 0, 1, 100)
        g.add_transfer("cross", 0, 4, 300)
        result = engine.run(g)
        assert result.intra_rack_bytes() == 100
        assert result.cross_rack_bytes() == 300
        assert len(result.transfers()) == 2

    def test_timings_cover_all_jobs(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        g.add_compute("c", 2, 1.0)
        result = engine.run(g)
        assert set(result.timings) == {"t", "c"}

    def test_event_counts(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        g.add_compute("c", 2, 1.0)
        result = engine.run(g)
        assert len(result.events) == 4
