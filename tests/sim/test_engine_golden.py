"""Golden-value determinism pins for the event engine.

The resource-indexed scheduler must reproduce the exact schedules the
original rescan scheduler produced — same start order, same completion
batching, same floating-point makespans to the last bit.  These values
were captured from the engine before the scheduler rework; any diff here
means the greedy (ready-time, insertion-order) policy changed, which
invalidates every figure in the reproduction.

Digests cover the full ordered event stream (``(time, kind, job_id)``
per event, via ``repr`` so float bit-patterns count), and for the big
merged graph also every job's exact start/end times.  Makespans are
compared as ``repr`` strings: bit-for-bit, no tolerance.
"""

import hashlib

from repro.cluster import Cluster, SIMICS_BANDWIDTH
from repro.experiments import build_simics_environment, run_scheme
from repro.multistripe import StripeStore, merge_plans, node_failure_contexts
from repro.repair import CARRepair, RPRScheme, TraditionalRepair
from repro.rs import SIMICS_DECODE, get_code
from repro.sim import SimulationEngine


def event_digest(sim) -> str:
    stream = repr([(e.time, e.kind, e.job_id) for e in sim.events])
    return hashlib.sha256(stream.encode()).hexdigest()


def timings_digest(sim) -> str:
    stream = repr(sorted((jid, t.start, t.end) for jid, t in sim.timings.items()))
    return hashlib.sha256(stream.encode()).hexdigest()


class TestFig5SingleRepairSchedules:
    """The paper's Figure 5 scenario: RS(6,2), block 0 lost, Simics testbed."""

    def run(self, scheme):
        env = build_simics_environment(6, 2)
        return run_scheme(env, scheme, [0]).sim

    def test_rpr_no_pipeline_schedule(self):
        sim = self.run(RPRScheme(pipeline=False))
        assert repr(sim.makespan) == "63.744"
        assert len(sim.events) == 18
        assert event_digest(sim) == (
            "3cc51f7f91e15cb6d8f1a1818b6c3747865e8ddcef2a9d1f669246c881745f64"
        )

    def test_rpr_pipelined_schedule(self):
        sim = self.run(RPRScheme(pipeline=True))
        assert repr(sim.makespan) == "43.519999999999996"
        assert len(sim.events) == 20
        assert event_digest(sim) == (
            "02d50053aea04484a2081753555e6957523aaa325c2a7c1cfec3ddbdbacf358a"
        )

    def test_traditional_schedule(self):
        sim = self.run(TraditionalRepair())
        assert repr(sim.makespan) == "105.47200000000001"
        assert len(sim.events) == 14
        assert event_digest(sim) == (
            "58e6861cdb10c72c6ca2c128520e83622e10ac5e84a431612f84fe91eaf31afb"
        )

    def test_car_schedule(self):
        sim = self.run(CARRepair())
        assert repr(sim.makespan) == "64.512"
        assert len(sim.events) == 18
        assert event_digest(sim) == (
            "5408bb440616a37f744be19b05f41a8c4846b10ce9aad04dbc069b943c35b29e"
        )


class TestMergedNodeRebuildGraphs:
    """Store-scale merged graphs: port contention across hundreds of jobs."""

    @staticmethod
    def rebuild_sim(num_stripes, cross_capacity=None):
        cluster = Cluster.homogeneous(5, 8)
        store = StripeStore.build(cluster, get_code(6, 2), num_stripes)
        _, contexts = node_failure_contexts(store, 0, mode="scatter")
        plans = [RPRScheme().plan(ctx) for ctx in contexts]
        graph = merge_plans(plans, SIMICS_DECODE)
        engine = SimulationEngine(
            cluster, SIMICS_BANDWIDTH, cross_capacity=cross_capacity
        )
        return graph, engine.run(graph)

    def test_200_stripe_rebuild_exact(self):
        graph, sim = self.rebuild_sim(200)
        assert len(graph) == 405
        assert repr(sim.makespan) == "409.85600000000005"
        assert len(sim.events) == 810
        assert event_digest(sim) == (
            "a68cf34f8732db20f264215b3cbe322bb85a52691960f66b338c1e7abe372047"
        )
        assert timings_digest(sim) == (
            "6a26e6a65ce432f317e81ff9deec1f52b8ceac465a422a37d22e7d3c64f1e4ac"
        )

    def test_40_stripe_rebuild_exact(self):
        graph, sim = self.rebuild_sim(40)
        assert len(graph) == 81
        assert repr(sim.makespan) == "125.44000000000001"
        assert event_digest(sim) == (
            "6ea1bd643e6f1ef35790da1b781a09d9f5ed3c1ec71f11aa4f2982330b88579e"
        )

    def test_40_stripe_rebuild_with_switch_capacity(self):
        """The cross-rack token path must batch and wake identically too."""
        _, sim = self.rebuild_sim(40, cross_capacity=2)
        assert repr(sim.makespan) == "248.06399999999996"
        assert event_digest(sim) == (
            "748a8f9531001cc07067fbc9dc040920576b521771945df187636055f6f0e062"
        )

    def test_rerun_is_bit_identical(self):
        """Two runs of one engine instance produce identical streams."""
        cluster = Cluster.homogeneous(5, 8)
        store = StripeStore.build(cluster, get_code(6, 2), 40)
        _, contexts = node_failure_contexts(store, 0, mode="scatter")
        graph = merge_plans([RPRScheme().plan(c) for c in contexts], SIMICS_DECODE)
        engine = SimulationEngine(cluster, SIMICS_BANDWIDTH)
        first, second = engine.run(graph), engine.run(graph)
        assert event_digest(first) == event_digest(second)
        assert timings_digest(first) == timings_digest(second)
