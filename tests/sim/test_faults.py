"""Engine fault-injection semantics: deaths, stragglers, lost transfers.

Scenarios use the same 3x4 cluster as the engine tests (intra 100 B/s,
cross 10 B/s: a 100-byte block takes 1 s / 10 s), so every expected time
is mentally checkable.  Contracts under test are spelled out in
docs/FAULTS.md and :mod:`repro.sim.faults`.
"""

import pytest

from repro.cluster import Cluster, HierarchicalBandwidth
from repro.sim import (
    FaultPlan,
    FaultReport,
    JobGraph,
    NodeDeath,
    SimulationEngine,
    Straggler,
    TransferLoss,
    random_fault_plan,
)


@pytest.fixture
def cluster():
    return Cluster.homogeneous(3, 4)


@pytest.fixture
def engine(cluster):
    return SimulationEngine(cluster, HierarchicalBandwidth(intra=100.0, cross=10.0))


def kill(node, time):
    return FaultPlan(deaths=(NodeDeath(node=node, time=time),))


class TestNodeDeath:
    def test_aborts_running_transfer(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)  # 1 s intra
        result = engine.run(g, kill(1, 0.5))
        report = result.faults
        assert report.aborted == {"t": 0.5}
        assert result.timings["t"].end == 0.5
        assert report.aborted_bytes == pytest.approx(50.0)
        assert not report.complete

    def test_dependents_of_aborted_job_are_skipped(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        g.add_compute("c", 2, 1.0, deps=["t"])
        g.add_compute("grandchild", 3, 1.0, deps=["c"])
        report = engine.run(g, kill(1, 0.5)).faults
        assert set(report.skipped) == {"c", "grandchild"}
        assert report.incomplete == {"t", "c", "grandchild"}

    def test_job_ready_after_death_fails_to_start(self, engine):
        g = JobGraph()
        g.add_compute("warmup", 0, 2.0)
        g.add_compute("doomed", 1, 1.0, deps=["warmup"])
        report = engine.run(g, kill(1, 0.5)).faults
        # "doomed" never ran: its node was already dead when it became
        # eligible at t=2.
        assert "doomed" in report.failed
        assert "doomed" not in report.aborted
        assert "warmup" not in report.incomplete

    def test_completion_beats_death_at_same_instant(self, engine):
        """Completions are processed before deaths at one instant."""
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)  # finishes exactly at t=1
        report = engine.run(g, kill(1, 1.0)).faults
        assert report.complete
        assert report.aborted == {}

    def test_death_after_makespan_changes_nothing(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        base = engine.run(g)
        faulted = engine.run(g, kill(1, 100.0))
        assert faulted.faults.complete
        assert faulted.faults.dead_nodes == {}
        assert repr(faulted.makespan) == repr(base.makespan)

    def test_unrelated_jobs_still_finish(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        g.add_transfer("other", 4, 5, 100)
        report = engine.run(g, kill(1, 0.5)).faults
        assert "other" not in report.incomplete

    def test_abort_frees_ports_for_other_work(self, engine):
        """A death mid-transfer releases the surviving endpoint's port."""
        g = JobGraph()
        g.add_transfer("dying", 4, 0, 100)  # cross, 10 s, holds 0:down
        g.add_transfer("queued", 8, 0, 100)  # waits on 0:down
        result = engine.run(g, kill(4, 2.0))
        assert result.timings["queued"].start == pytest.approx(2.0)
        assert result.faults.aborted == {"dying": 2.0}


class TestStraggler:
    def test_compute_slows_by_factor(self, engine):
        g = JobGraph()
        g.add_compute("c", 0, 2.0)
        plan = FaultPlan(stragglers=(Straggler(node=0, factor=3.0),))
        assert engine.run(g, plan).makespan == pytest.approx(6.0)

    def test_transfer_stretched_by_worse_endpoint(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        plan = FaultPlan(
            stragglers=(
                Straggler(node=0, factor=2.0),
                Straggler(node=1, factor=5.0),
            )
        )
        assert engine.run(g, plan).makespan == pytest.approx(5.0)

    def test_factors_multiply_per_node(self):
        plan = FaultPlan(
            stragglers=(
                Straggler(node=3, factor=2.0),
                Straggler(node=3, factor=3.0),
            )
        )
        assert plan.straggler_factor(3) == pytest.approx(6.0)
        assert plan.straggler_factor(0) == 1.0


class TestTransferLoss:
    def test_named_loss_retries_once(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        plan = FaultPlan(losses=(TransferLoss(job_id="t"),))
        result = engine.run(g, plan)
        # The lost attempt occupies the wire, then the retry runs.
        assert result.makespan == pytest.approx(2.0)
        assert result.faults.lost == {"t": 1}
        assert result.faults.retried_bytes == pytest.approx(100.0)
        assert result.faults.complete

    def test_multiple_lost_attempts(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        plan = FaultPlan(losses=(TransferLoss(job_id="t", attempts=2),))
        result = engine.run(g, plan)
        assert result.makespan == pytest.approx(3.0)
        assert result.faults.retry_count == 2

    def test_dependents_wait_for_successful_attempt(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        g.add_compute("c", 1, 1.0, deps=["t"])
        plan = FaultPlan(losses=(TransferLoss(job_id="t"),))
        result = engine.run(g, plan)
        assert result.timings["c"].start == pytest.approx(2.0)

    def test_random_losses_bounded_and_deterministic(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        plan = FaultPlan(loss_probability=0.999, seed=3, max_random_losses=2)
        a = engine.run(g, plan)
        b = engine.run(g, plan)
        # Near-certain loss still terminates after max_random_losses.
        assert a.faults.retry_count == 2
        assert a.faults.complete
        assert [(e.time, e.kind, e.job_id) for e in a.events] == [
            (e.time, e.kind, e.job_id) for e in b.events
        ]

    def test_is_lost_is_order_independent(self):
        plan = FaultPlan(loss_probability=0.5, seed=9)
        draws = [plan.is_lost("job-a", attempt) for attempt in range(2)]
        # Hash-based draws: re-querying in any order gives the same answer.
        assert [plan.is_lost("job-a", a) for a in (1, 0)] == draws[::-1]


class TestFaultPlanValidation:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(deaths=(NodeDeath(node=0, time=1.0),))

    def test_negative_death_time_rejected(self):
        with pytest.raises(ValueError):
            NodeDeath(node=0, time=-1.0)

    def test_nonpositive_straggler_factor_rejected(self):
        with pytest.raises(ValueError):
            Straggler(node=0, factor=0.0)

    def test_loss_attempts_below_one_rejected(self):
        with pytest.raises(ValueError):
            TransferLoss(job_id="t", attempts=0)

    def test_loss_probability_range(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_probability=1.0)
        with pytest.raises(ValueError):
            FaultPlan(loss_probability=-0.1)

    def test_shifted_clamps_past_deaths(self):
        plan = FaultPlan(
            deaths=(NodeDeath(node=0, time=5.0), NodeDeath(node=1, time=20.0))
        )
        shifted = plan.shifted(10.0)
        assert shifted.death_times() == {0: 0.0, 1: 10.0}
        assert plan.shifted(0.0) is plan

    def test_earliest_death_per_node_wins(self):
        plan = FaultPlan(
            deaths=(NodeDeath(node=0, time=5.0), NodeDeath(node=0, time=2.0))
        )
        assert plan.death_times() == {0: 2.0}


class TestRandomFaultPlan:
    def test_seeded_and_deterministic(self):
        a = random_fault_plan(range(12), seed=4, deaths=2, stragglers=1)
        b = random_fault_plan(range(12), seed=4, deaths=2, stragglers=1)
        assert a == b
        assert len(a.deaths) == 2
        assert len(a.stragglers) == 1
        # deaths and stragglers never share a node
        assert not {d.node for d in a.deaths} & {s.node for s in a.stragglers}

    def test_too_many_picks_rejected(self):
        with pytest.raises(ValueError):
            random_fault_plan(range(3), deaths=2, stragglers=2)


class TestFaultReport:
    def test_round_trips_through_sim_result_dict(self, engine):
        from repro.sim import SimResult

        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        g.add_compute("c", 2, 1.0, deps=["t"])
        result = engine.run(g, kill(1, 0.5))
        clone = SimResult.from_dict(result.to_dict())
        assert clone.faults is not None
        assert clone.faults.to_dict() == result.faults.to_dict()

    def test_fault_free_run_has_no_report(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        assert engine.run(g).faults is None
        # An empty (falsy) plan stays on the fault-free fast path.
        assert engine.run(g, FaultPlan()).faults is None

    def test_report_helpers(self):
        report = FaultReport(
            aborted={"a": 1.0}, failed={"b": 2.0}, skipped=("c",), lost={"t": 3}
        )
        assert report.incomplete == {"a", "b", "c"}
        assert not report.complete
        assert report.retry_count == 3
        assert FaultReport().complete
