"""Golden-value determinism pins for fault-injected runs.

Companion to ``test_engine_golden.py``: the faulted scheduler path must
be exactly as reproducible as the fault-free one.  Pins cover the full
ordered event stream (``(time, kind, job_id)`` via ``repr`` so float
bit-patterns count) of one death scenario and one straggler+loss
scenario on the Figure 5 repair, plus the two identity contracts from
docs/FAULTS.md: a plan whose faults never fire reproduces the fault-free
schedule bit-for-bit, and the same plan always reproduces itself.
"""

import hashlib

from repro.experiments import build_simics_environment, context_for
from repro.repair import RPRScheme
from repro.sim import (
    FaultPlan,
    NodeDeath,
    SimulationEngine,
    Straggler,
    random_fault_plan,
)

#: Node 12 is the R0 pair0 cross sender of the pinned RS(6,2) RPR plan;
#: its transfer is in flight 2.048 s -> 22.528 s, so a death at t=20
#: aborts it mid-stream.
VICTIM = 12
DEATH_AT = 20.0


def event_digest(sim) -> str:
    stream = repr([(e.time, e.kind, e.job_id) for e in sim.events])
    return hashlib.sha256(stream.encode()).hexdigest()


def fig5_rpr_run(faults=None):
    env = build_simics_environment(6, 2)
    plan = RPRScheme().plan(context_for(env, [0]))
    graph = plan.to_job_graph(env.cost_model)
    engine = SimulationEngine(env.cluster, env.bandwidth)
    return engine.run(graph, faults)


class TestPinnedDeathSchedule:
    """RS(6,2), block 0 lost, node 12 dies at t=20 mid cross-send."""

    def run(self):
        return fig5_rpr_run(
            FaultPlan(deaths=(NodeDeath(node=VICTIM, time=DEATH_AT),))
        )

    def test_schedule_digest(self):
        sim = self.run()
        assert repr(sim.makespan) == "22.784"
        assert len(sim.events) == 15
        assert event_digest(sim) == (
            "29be7a4ba153bc451835f0cb673028f546728d3d0e51264a9af334ff52bf12f4"
        )

    def test_report_contents(self):
        report = self.run().faults
        assert report.dead_nodes == {VICTIM: DEATH_AT}
        assert report.aborted == {"rpr:eq0:cross:R0:pair0:send": DEATH_AT}
        assert report.skipped == (
            "rpr:eq0:cross:R0:pair0:combine",
            "rpr:eq0:cross:R1:to-target",
            "rpr:eq0:final",
        )
        assert not report.complete

    def test_same_plan_reproduces_itself(self):
        assert event_digest(self.run()) == event_digest(self.run())


class TestPinnedStragglerLossSchedule:
    """Same repair under a 2x straggler and seeded 30% transfer loss."""

    PLAN = FaultPlan(
        stragglers=(Straggler(node=VICTIM, factor=2.0),),
        loss_probability=0.3,
        seed=7,
    )

    def test_schedule_digest(self):
        sim = fig5_rpr_run(self.PLAN)
        assert repr(sim.makespan) == "107.00800000000001"
        assert sim.faults.retry_count == 2
        assert sim.faults.complete
        assert event_digest(sim) == (
            "d06fc7467e4285ba6fea15b8209c5862d63ec4ee5f49854a4fe54202f3424e27"
        )

    def test_same_plan_reproduces_itself(self):
        assert event_digest(fig5_rpr_run(self.PLAN)) == event_digest(
            fig5_rpr_run(self.PLAN)
        )


class TestZeroFaultIdentity:
    """Plans that never fire must not perturb the schedule at all."""

    def test_far_future_death_matches_fault_free_run(self):
        base = fig5_rpr_run()
        never = fig5_rpr_run(
            FaultPlan(deaths=(NodeDeath(node=VICTIM, time=1e9),))
        )
        assert repr(never.makespan) == repr(base.makespan)
        assert event_digest(never) == event_digest(base)
        assert never.faults.complete

    def test_empty_plan_takes_fault_free_fast_path(self):
        base = fig5_rpr_run()
        empty = fig5_rpr_run(FaultPlan())
        assert empty.faults is None
        assert event_digest(empty) == event_digest(base)

    def test_seeded_random_plan_is_stable_across_runs(self):
        env = build_simics_environment(6, 2)
        draws = [
            random_fault_plan(
                env.cluster.node_ids(), seed=11, deaths=1, death_window=(0.0, 40.0)
            )
            for _ in range(2)
        ]
        assert draws[0] == draws[1]
        a, b = (fig5_rpr_run(plan) for plan in draws)
        assert event_digest(a) == event_digest(b)
