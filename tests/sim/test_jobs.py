"""Tests for the job-graph structure."""

import pytest

from repro.sim import ComputeJob, JobGraph, JobGraphError, TransferJob


class TestJobValidation:
    def test_self_transfer_rejected(self):
        with pytest.raises(JobGraphError):
            TransferJob(job_id="t", src=1, dst=1, nbytes=10)

    def test_zero_bytes_rejected(self):
        with pytest.raises(JobGraphError):
            TransferJob(job_id="t", src=0, dst=1, nbytes=0)

    def test_negative_compute_rejected(self):
        with pytest.raises(JobGraphError):
            ComputeJob(job_id="c", node=0, seconds=-1)

    def test_zero_compute_allowed(self):
        assert ComputeJob(job_id="c", node=0, seconds=0).seconds == 0


class TestJobGraph:
    def test_add_and_len(self):
        g = JobGraph()
        g.add_transfer("t0", 0, 1, 100)
        g.add_compute("c0", 1, 0.5, deps=["t0"])
        assert len(g) == 2

    def test_duplicate_id_rejected(self):
        g = JobGraph()
        g.add_compute("x", 0, 1)
        with pytest.raises(JobGraphError):
            g.add_compute("x", 0, 2)

    def test_validate_accepts_dag(self):
        g = JobGraph()
        g.add_compute("a", 0, 1)
        g.add_compute("b", 0, 1, deps=["a"])
        g.add_compute("c", 0, 1, deps=["a", "b"])
        g.validate()

    def test_dangling_dep_rejected(self):
        g = JobGraph()
        g.add_compute("a", 0, 1, deps=["ghost"])
        with pytest.raises(JobGraphError):
            g.validate()

    def test_cycle_rejected(self):
        g = JobGraph()
        g.add(ComputeJob(job_id="a", node=0, seconds=1, deps=("b",)))
        g.add(ComputeJob(job_id="b", node=0, seconds=1, deps=("a",)))
        with pytest.raises(JobGraphError):
            g.validate()

    def test_self_cycle_rejected(self):
        g = JobGraph()
        g.add(ComputeJob(job_id="a", node=0, seconds=1, deps=("a",)))
        with pytest.raises(JobGraphError):
            g.validate()

    def test_tags_preserved(self):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 5, tag="inner")
        assert g.jobs["t"].tag == "inner"
