"""Tests for per-transfer link latency (model extension)."""

import pytest

from repro.cluster import Cluster, HierarchicalBandwidth, MatrixBandwidth
from repro.ec2 import GEO_LATENCY_S, table1_bandwidth
from repro.sim import JobGraph, SimulationEngine


@pytest.fixture
def cluster():
    return Cluster.homogeneous(2, 2)


class TestHierarchicalLatency:
    def test_defaults_to_zero(self, cluster):
        bw = HierarchicalBandwidth(intra=100.0, cross=10.0)
        assert bw.latency(cluster, 0, 1) == 0.0
        assert bw.latency(cluster, 0, 2) == 0.0

    def test_per_class_latency(self, cluster):
        bw = HierarchicalBandwidth(
            intra=100.0, cross=10.0, intra_latency=0.001, cross_latency=0.05
        )
        assert bw.latency(cluster, 0, 1) == 0.001
        assert bw.latency(cluster, 0, 2) == 0.05

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalBandwidth(intra=1, cross=1, intra_latency=-1)

    def test_self_transfer_rejected(self, cluster):
        bw = HierarchicalBandwidth(intra=1.0, cross=1.0)
        with pytest.raises(ValueError):
            bw.latency(cluster, 1, 1)


class TestMatrixLatency:
    def test_defaults_to_zero(self, cluster):
        bw = MatrixBandwidth(pair_rate={(0, 0): 10.0, (0, 1): 5.0, (1, 1): 10.0})
        assert bw.latency(cluster, 0, 2) == 0.0

    def test_explicit_latency(self, cluster):
        bw = MatrixBandwidth(
            pair_rate={(0, 0): 10.0, (0, 1): 5.0, (1, 1): 10.0},
            pair_latency={(0, 1): 0.1},
        )
        assert bw.latency(cluster, 0, 2) == 0.1
        assert bw.latency(cluster, 0, 1) == 0.0  # absent pair -> 0

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            MatrixBandwidth(pair_rate={(0, 0): 1.0}, pair_latency={(0, 0): -0.5})
        with pytest.raises(ValueError):
            MatrixBandwidth(pair_rate={(0, 0): 1.0}, pair_latency={(1, 0): 0.5})


class TestEngineWithLatency:
    def test_latency_added_to_duration(self, cluster):
        bw = HierarchicalBandwidth(
            intra=100.0, cross=10.0, cross_latency=2.0
        )
        engine = SimulationEngine(cluster, bw)
        g = JobGraph()
        g.add_transfer("t", 0, 2, 100)  # 10 s transfer + 2 s latency
        assert engine.run(g).makespan == pytest.approx(12.0)

    def test_latency_holds_ports(self, cluster):
        """Latency occupies the ports like transfer time (store-and-forward
        pessimism, consistent with the whole-transfer timestep model)."""
        bw = HierarchicalBandwidth(intra=100.0, cross=10.0, cross_latency=2.0)
        engine = SimulationEngine(cluster, bw)
        g = JobGraph()
        g.add_transfer("a", 0, 2, 100)
        g.add_transfer("b", 1, 2, 100)  # same destination port
        assert engine.run(g).makespan == pytest.approx(24.0)

    def test_zero_latency_unchanged(self, cluster):
        engine = SimulationEngine(
            cluster, HierarchicalBandwidth(intra=100.0, cross=10.0)
        )
        g = JobGraph()
        g.add_transfer("t", 0, 2, 100)
        assert engine.run(g).makespan == pytest.approx(10.0)


class TestEC2Latency:
    def test_table1_latency_off_by_default(self, cluster):
        bw = table1_bandwidth()
        env_cluster = Cluster.homogeneous(5, 2)
        assert bw.latency(env_cluster, 0, 2) == 0.0

    def test_geo_latency_attached(self):
        bw = table1_bandwidth(with_latency=True)
        env_cluster = Cluster.homogeneous(5, 2)
        # ohio (rack 0) -> tokyo (rack 1)
        assert bw.latency(env_cluster, 0, 2) == pytest.approx(
            GEO_LATENCY_S[("ohio", "tokyo")]
        )

    def test_geo_latency_complete(self):
        assert len(GEO_LATENCY_S) == 15
        assert all(v >= 0 for v in GEO_LATENCY_S.values())
