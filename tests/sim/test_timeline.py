"""Tests for the ASCII timeline renderer."""

import pytest

from repro.cluster import Cluster, HierarchicalBandwidth
from repro.sim import (
    JobGraph,
    SimulationEngine,
    render_timeline,
    timeline_rows,
)


@pytest.fixture
def engine():
    return SimulationEngine(
        Cluster.homogeneous(2, 2), HierarchicalBandwidth(intra=100.0, cross=10.0)
    )


class TestTimelineRows:
    def test_transfer_appears_on_both_ports(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        rows = timeline_rows(engine.run(g))
        labels = {r.label for r in rows}
        assert labels == {"n0:up", "n1:down"}

    def test_compute_on_cpu_row(self, engine):
        g = JobGraph()
        g.add_compute("c", 1, 2.0)
        rows = timeline_rows(engine.run(g))
        assert [r.label for r in rows] == ["n1:cpu"]
        assert rows[0].intervals == ((0.0, 2.0, "c"),)

    def test_rows_sorted_by_node_then_kind(self, engine):
        g = JobGraph()
        g.add_compute("c0", 0, 1.0)
        g.add_transfer("t", 1, 0, 100)
        g.add_compute("c1", 1, 1.0)
        rows = timeline_rows(engine.run(g))
        assert [r.label for r in rows] == ["n0:down", "n0:cpu", "n1:up", "n1:cpu"]

    def test_intervals_sorted_by_start(self, engine):
        g = JobGraph()
        g.add_transfer("a", 2, 0, 100)
        g.add_transfer("b", 3, 0, 100)
        rows = timeline_rows(engine.run(g))
        down = next(r for r in rows if r.label == "n0:down")
        starts = [iv[0] for iv in down.intervals]
        assert starts == sorted(starts)


class TestRender:
    def test_empty_result(self, engine):
        assert render_timeline(engine.run(JobGraph())) == "(empty timeline)"

    def test_busy_markers_cover_activity(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 2, 100)  # whole makespan busy
        text = render_timeline(engine.run(g), width=20)
        busy_line = text.splitlines()[0]
        assert "#" * 19 in busy_line

    def test_idle_markers_for_late_jobs(self, engine):
        g = JobGraph()
        g.add_transfer("t1", 0, 2, 100)            # 10 s
        g.add_compute("c", 2, 10.0, deps=["t1"])   # second half
        text = render_timeline(engine.run(g), width=20)
        cpu_line = next(l for l in text.splitlines() if "cpu" in l)
        cells = cpu_line.split("|")[1]
        assert cells[:8].count("#") == 0
        assert "#" in cells[10:]

    def test_scale_line_shows_makespan(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 2, 100)
        text = render_timeline(engine.run(g))
        assert "10.00s" in text.splitlines()[-1]

    def test_narrow_width_rejected(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        with pytest.raises(ValueError):
            render_timeline(engine.run(g), width=4)

    def test_serialisation_visible(self, engine):
        """Two same-destination transfers occupy disjoint halves."""
        g = JobGraph()
        g.add_transfer("a", 2, 0, 100)
        g.add_transfer("b", 3, 0, 100)
        text = render_timeline(engine.run(g), width=20)
        down = next(l for l in text.splitlines() if "n0:down" in l)
        cells = down.split("|")[1]
        assert cells.count("#") >= 18  # busy nearly the whole span
