"""Golden pins for critical-path extraction on faulted schedules.

``RunTrace`` (and with it ``rpr trace``) used to assume every started
job gets an *_END event; faulted runs break that (aborts end at the
death instant, lost transfers restart from a loss, cascade-skipped jobs
never appear).  These pins fix one RS(8,3) degraded repair — node 6
dies halfway through the fault-free schedule, killing the R0 cross
sender mid-stream and forcing a re-planned second attempt — and assert
exact path structure on both attempts, so path extraction across abort
and retry boundaries cannot silently regress.
"""

import pytest

from repro.experiments import build_simics_environment, context_for
from repro.repair import RPRScheme, simulate_repair, simulate_repair_with_faults
from repro.sim import FaultPlan, NodeDeath, RunTrace

VICTIM = 6


@pytest.fixture(scope="module")
def outcome():
    env = build_simics_environment(8, 3)
    ctx = context_for(env, [2])
    horizon = simulate_repair(RPRScheme(), ctx, env.bandwidth).total_repair_time
    assert repr(horizon) == "45.568"
    faults = FaultPlan(deaths=(NodeDeath(VICTIM, 0.5 * horizon),))
    return simulate_repair_with_faults(RPRScheme(), ctx, env.bandwidth, faults)


class TestPinnedDegradedOutcome:
    def test_shape(self, outcome):
        assert outcome.attempts == 2
        assert outcome.dead_nodes == {VICTIM: 22.784}
        assert outcome.total_repair_time == pytest.approx(146.688)


class TestAbortedAttemptPath:
    """Attempt 0 dies at t=22.784; its path must cross the abort."""

    def test_path_walks_across_the_abort(self, outcome):
        path = outcome.trace(0).path
        assert [(seg.job_id, seg.entered_via, seg.aborted) for seg in path] == [
            ("rpr:inner:r1:L0:p0:send:0", "start", False),
            ("rpr:inner:r1:L1:p0:send:0", "resource", False),
            ("rpr:inner:r1:L1:p0:eq0:combine", "dependency", False),
            ("rpr:eq0:cross:R0:to-target", "dependency", True),
            ("rpr:eq0:cross:R1:to-target", "abort", False),
        ]

    def test_aborted_segment_ends_at_the_death_instant(self, outcome):
        aborted = [seg for seg in outcome.trace(0).path if seg.aborted]
        assert len(aborted) == 1
        assert aborted[0].end == pytest.approx(22.784)

    def test_path_is_contiguous_to_the_makespan(self, outcome):
        trace = outcome.trace(0)
        assert trace.path[0].start == pytest.approx(0.0)
        assert trace.path[-1].end == pytest.approx(trace.makespan)
        for prev, nxt in zip(trace.path, trace.path[1:]):
            assert nxt.start == pytest.approx(prev.end)

    def test_aborted_occupancy_carries_no_bytes(self, outcome):
        # The abort holds its ports until the death but moved nothing the
        # ledgers count — byte totals stay conservation-exact.
        trace = outcome.trace(0)
        aborted_job = "rpr:eq0:cross:R0:to-target"
        intervals = [
            iv
            for resource in trace.resources
            for iv in resource.intervals
            if iv.job_id == aborted_job and iv.end == pytest.approx(22.784)
        ]
        assert intervals, "abort occupancy missing from the utilization view"
        assert all(iv.nbytes == 0.0 for iv in intervals)


class TestFinalAttemptPath:
    """Attempt 1 is the re-planned degraded gather — fault-free shape."""

    def test_default_trace_is_the_final_attempt(self, outcome):
        assert outcome.trace().path == outcome.trace(-1).path
        assert outcome.trace(1).makespan == pytest.approx(103.424)

    def test_path_structure(self, outcome):
        path = outcome.trace(1).path
        assert [seg.entered_via for seg in path] == [
            "start", "resource", "resource", "resource", "resource", "dependency",
        ]
        assert not any(seg.aborted for seg in path)
        assert path[-1].job_id == "rpr:degraded:a1:final:2"
        assert path[-1].end == pytest.approx(103.424)


class TestFaultFreePathUnchanged:
    """The faulted-path rewrite must not move a fault-free critical path."""

    def test_no_abort_vias_without_faults(self):
        env = build_simics_environment(8, 3)
        out = simulate_repair(RPRScheme(), context_for(env, [2]), env.bandwidth)
        trace = RunTrace.from_result(out.sim, env.cluster)
        assert {seg.entered_via for seg in trace.path} <= {
            "start", "dependency", "resource", "completion",
        }
        assert not any(seg.aborted for seg in trace.path)
        assert trace.path[-1].end == pytest.approx(trace.makespan)


class TestStitchedTelemetry:
    def test_spans_and_fault_ledger(self, outcome):
        tel = outcome.telemetry()
        assert tel.clock == "sim"
        assert tel.extent == pytest.approx(outcome.total_repair_time)
        assert tel.counters["fault.deaths"] == pytest.approx(1.0)
        assert tel.counters["fault.aborts"] == pytest.approx(1.0)
        aborted = [s.op_id for s in tel.spans if s.category == "aborted"]
        assert aborted == ["rpr:eq0:cross:R0:to-target"]
        assert {e.name for e in tel.events} == {"fault.abort", "fault.death"}
