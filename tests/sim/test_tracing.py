"""Tests for the observability layer (repro.sim.tracing).

The contracts documented in docs/OBSERVABILITY.md: per-resource timelines
sum to busy time, the critical path is contiguous from t=0 to the
makespan, exports round-trip, and the renderers stay text-only.
"""

import json

import pytest

from repro.cluster import Cluster, HierarchicalBandwidth
from repro.experiments import build_simics_environment, run_scheme
from repro.metrics import TimeBreakdown, TrafficLedger
from repro.repair import CARRepair, RPRScheme, TraditionalRepair
from repro.sim import (
    JobGraph,
    RunTrace,
    SimResult,
    SimulationEngine,
    critical_path,
    render_gantt,
    render_report,
)


@pytest.fixture
def engine():
    return SimulationEngine(
        Cluster.homogeneous(2, 2), HierarchicalBandwidth(intra=100.0, cross=10.0)
    )


def assert_contiguous(trace):
    """Head at t=0, each hop starts at its predecessor's end, tail at makespan."""
    assert trace.path, "critical path is empty"
    assert trace.path[0].start == pytest.approx(0.0, abs=1e-9)
    for prev, cur in zip(trace.path, trace.path[1:]):
        assert cur.start == pytest.approx(prev.end, rel=1e-9, abs=1e-9)
    assert trace.path[-1].end == pytest.approx(trace.makespan, rel=1e-9)


class TestResourceTimelines:
    def test_busy_equals_interval_sum(self, engine):
        g = JobGraph()
        g.add_transfer("a", 0, 1, 100)          # intra, 1 s
        g.add_transfer("b", 0, 2, 300, deps=["a"])  # cross, 30 s
        g.add_compute("c", 2, 2.0, deps=["b"])
        trace = RunTrace.from_result(engine.run(g), engine.cluster)
        up0 = trace.resource("n0:up")
        assert up0.busy == pytest.approx(sum(iv.duration for iv in up0.intervals))
        assert up0.busy == pytest.approx(31.0)
        assert up0.nbytes == pytest.approx(400.0)
        assert trace.resource("n2:cpu").busy == pytest.approx(2.0)
        assert trace.resource("n2:cpu").nbytes == 0.0

    def test_total_busy_matches_time_breakdown(self):
        """Tracing and the metrics layer agree on aggregate busy time.

        Every transfer occupies exactly two ports, so port busy time is
        twice the summed transfer durations; CPU busy equals compute."""
        env = build_simics_environment(6, 2)
        out = run_scheme(env, RPRScheme(), [1])
        trace = out.trace()
        breakdown = TimeBreakdown.from_sim(out.sim)
        port_busy = sum(r.busy for r in trace.resources if r.kind in ("up", "down"))
        cpu_busy = sum(r.busy for r in trace.resources if r.kind == "cpu")
        assert port_busy == pytest.approx(2 * breakdown.transfer_busy)
        assert cpu_busy == pytest.approx(breakdown.compute_busy)

    def test_port_bytes_match_traffic_ledger(self):
        env = build_simics_environment(6, 2)
        out = run_scheme(env, TraditionalRepair(), [1])
        trace = out.trace()
        ledger = TrafficLedger.from_sim(out.sim, env.cluster)
        for res in trace.resources:
            if res.kind == "up":
                assert res.nbytes == pytest.approx(ledger.uploaded_by_node[res.node])
            elif res.kind == "down":
                assert res.nbytes == pytest.approx(ledger.downloaded_by_node[res.node])

    def test_utilization_bounds(self):
        env = build_simics_environment(12, 4)
        trace = run_scheme(env, RPRScheme(), [1]).trace()
        for res in trace.resources:
            util = res.utilization(trace.makespan)
            assert 0.0 < util <= 1.0 + 1e-9
            assert res.idle(trace.makespan) == pytest.approx(
                trace.makespan - res.busy
            )

    def test_empty_run(self, engine):
        trace = RunTrace.from_result(engine.run(JobGraph()), engine.cluster)
        assert trace.resources == [] and trace.path == []
        assert render_report(trace) == "(empty trace)"
        assert render_gantt(trace) == "(empty trace)"


class TestCriticalPath:
    @pytest.mark.parametrize("scheme_cls", [TraditionalRepair, CARRepair, RPRScheme])
    @pytest.mark.parametrize("failed", [[1], [0, 3]])
    def test_path_ends_at_makespan(self, scheme_cls, failed):
        if scheme_cls is CARRepair and len(failed) > 1:
            pytest.skip("CAR is single-failure only")
        env = build_simics_environment(8, 4)
        out = run_scheme(env, scheme_cls(), failed)
        trace = out.trace()
        assert_contiguous(trace)
        assert sum(s.duration for s in trace.path) == pytest.approx(
            out.sim.makespan, rel=1e-9
        )

    def test_dependency_edge(self, engine):
        g = JobGraph()
        g.add_transfer("t", 0, 1, 100)
        g.add_compute("c", 1, 2.0, deps=["t"])
        path = critical_path(engine.run(g))
        assert [s.job_id for s in path] == ["t", "c"]
        assert path[1].entered_via == "dependency"

    def test_resource_edge(self, engine):
        """Two independent transfers into one download port serialise; the
        second's start is attributed to the port release, not a dependency."""
        g = JobGraph()
        g.add_transfer("a", 0, 2, 100)
        g.add_transfer("b", 1, 2, 100)
        path = critical_path(engine.run(g))
        assert [s.job_id for s in path] == ["a", "b"]
        assert path[0].entered_via == "start"
        assert path[1].entered_via == "resource"

    def test_completion_edge_under_cross_capacity(self):
        """With a capped switch, a job can wait on the cross-rack token of a
        transfer it shares no port or dependency with."""
        cluster = Cluster.homogeneous(3, 2)
        engine = SimulationEngine(
            cluster, HierarchicalBandwidth(intra=100.0, cross=10.0), cross_capacity=1
        )
        g = JobGraph()
        g.add_transfer("a", 0, 2, 100)  # rack0 -> rack1
        g.add_transfer("b", 1, 4, 100)  # rack0 -> rack2, blocked by the token
        path = critical_path(engine.run(g))
        assert [s.job_id for s in path] == ["a", "b"]
        assert path[1].entered_via == "completion"

    def test_attribution_sums_to_makespan(self):
        env = build_simics_environment(6, 2)
        trace = run_scheme(env, RPRScheme(), [1]).trace()
        att = trace.path_attribution()
        covered = (
            att["cross_transfer_s"] + att["intra_transfer_s"] + att["compute_s"]
        )
        assert covered + att["wait_s"] == pytest.approx(trace.makespan, rel=1e-9)
        assert att["wait_s"] == pytest.approx(0.0, abs=1e-6)


class TestRackAccounting:
    def test_rack_activity_is_union_not_sum(self, engine):
        g = JobGraph()
        g.add_transfer("a", 0, 2, 100)  # n0 and n1 upload in parallel:
        g.add_transfer("b", 1, 3, 100)  # rack 0 is active 10 s, not 20
        trace = RunTrace.from_result(engine.run(g), engine.cluster)
        assert trace.rack_activity("up")[0] == pytest.approx(10.0)
        assert trace.rack_idle_fraction("up")[0] == pytest.approx(0.0)

    def test_pipeline_reduces_rack_idle(self):
        """The Fig. 5 argument, machine-checked: the pipelined cross stage
        leaves racks less idle than the direct all-to-recovery gather."""
        env = build_simics_environment(6, 2)
        piped = run_scheme(env, RPRScheme(pipeline=True), [1]).trace()
        direct = run_scheme(env, RPRScheme(pipeline=False), [1]).trace()

        def mean_idle(trace):
            idle = trace.rack_idle_fraction("up")
            return sum(idle.values()) / len(idle)

        assert mean_idle(piped) < mean_idle(direct)


class TestSwitchProfile:
    def test_totals_match_traffic_split(self):
        env = build_simics_environment(6, 2)
        out = run_scheme(env, RPRScheme(), [1])
        trace = out.trace()
        profile = trace.switch_profile(buckets=17)
        assert sum(profile["aggregation_bytes"]) == pytest.approx(
            out.sim.cross_rack_bytes(), rel=1e-9
        )
        tor_total = sum(sum(series) for series in profile["tor_bytes"].values())
        # Intra traffic hits one TOR; cross traffic hits both endpoint TORs.
        assert tor_total == pytest.approx(
            out.sim.intra_rack_bytes() + 2 * out.sim.cross_rack_bytes(), rel=1e-9
        )

    def test_bucket_validation(self, engine):
        trace = RunTrace.from_result(engine.run(JobGraph()), engine.cluster)
        with pytest.raises(ValueError):
            trace.switch_profile(buckets=0)


class TestExport:
    def test_dict_round_trip_through_json(self):
        env = build_simics_environment(6, 2)
        trace = run_scheme(env, RPRScheme(), [1]).trace()
        data = json.loads(json.dumps(trace.to_dict()))
        restored = RunTrace.from_dict(data)
        assert restored.to_dict() == trace.to_dict()
        assert restored.makespan == trace.makespan
        assert_contiguous(restored)

    def test_json_lines_round_trip(self):
        env = build_simics_environment(6, 2)
        trace = run_scheme(env, TraditionalRepair(), [1]).trace()
        text = trace.to_json_lines()
        assert all(json.loads(line) for line in text.splitlines())
        restored = RunTrace.from_json_lines(text)
        assert restored.to_dict() == trace.to_dict()

    def test_json_lines_rejects_unknown_records(self):
        with pytest.raises(ValueError):
            RunTrace.from_json_lines('{"record": "mystery"}')

    def test_sim_result_round_trip(self):
        """SimResult.to_dict/from_dict preserve enough to re-derive the trace."""
        env = build_simics_environment(6, 2)
        out = run_scheme(env, RPRScheme(), [1])
        data = json.loads(json.dumps(out.sim.to_dict()))
        restored = SimResult.from_dict(data)
        assert restored.makespan == out.sim.makespan
        assert restored.cross_rack_bytes() == out.sim.cross_rack_bytes()
        re_trace = RunTrace.from_result(restored, env.cluster)
        assert re_trace.to_dict() == out.trace().to_dict()


class TestRenderers:
    def test_report_mentions_racks_and_path(self):
        env = build_simics_environment(6, 4)
        trace = run_scheme(env, RPRScheme(), [1]).trace()
        report = render_report(trace)
        assert "per-rack utilization" in report
        assert "critical path" in report
        assert "r0" in report and "x-rack" in report

    def test_gantt_shows_utilization_percent(self):
        env = build_simics_environment(6, 2)
        trace = run_scheme(env, TraditionalRepair(), [1]).trace()
        chart = render_gantt(trace, width=40)
        assert "%" in chart and "#" in chart
        with pytest.raises(ValueError):
            render_gantt(trace, width=5)

    def test_outcome_without_cluster_raises(self):
        from dataclasses import replace

        env = build_simics_environment(6, 2)
        out = run_scheme(env, RPRScheme(), [1])
        with pytest.raises(ValueError):
            replace(out, cluster=None).trace()
