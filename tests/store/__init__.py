"""Store service tests."""
