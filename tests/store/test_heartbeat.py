"""Failure detector arithmetic (fake clock) and heartbeat registration."""

import asyncio

import pytest

from repro.store.heartbeat import FailureDetector, HeartbeatSender


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestFailureDetector:
    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            FailureDetector(suspect_after=0.0)

    def test_first_beat_registers(self):
        clock = FakeClock()
        det = FailureDetector(suspect_after=1.0, clock=clock)
        entry = det.beat(3, "127.0.0.1", 4242, {"blocks": 0})
        assert entry.addr == ("127.0.0.1", 4242)
        assert det.alive_ids() == {3}

    def test_silence_past_threshold_is_death_reported_once(self):
        clock = FakeClock()
        det = FailureDetector(suspect_after=1.0, clock=clock)
        det.beat(0, "h", 1)
        det.beat(1, "h", 2)
        clock.now = 0.9
        det.beat(1, "h", 2)
        clock.now = 1.5  # node 0 silent for 1.5 > 1.0; node 1 for 0.6
        newly = det.sweep()
        assert [e.node_id for e in newly] == [0]
        assert det.dead_ids() == {0}
        # A second sweep must not re-report the same death (repairs would
        # double-trigger).
        assert det.sweep() == []

    def test_beat_after_death_revives(self):
        clock = FakeClock()
        det = FailureDetector(suspect_after=1.0, clock=clock)
        det.beat(0, "h", 1)
        clock.now = 5.0
        det.sweep()
        assert det.dead_ids() == {0}
        det.beat(0, "h", 9)  # restarted daemon, new port
        assert det.alive_ids() == {0}
        assert det.entry(0).port == 9

    def test_to_dict_reports_ages(self):
        clock = FakeClock()
        det = FailureDetector(suspect_after=10.0, clock=clock)
        det.beat(2, "h", 7, {"blocks": 4})
        clock.now = 3.0
        snap = det.to_dict()
        assert snap["2"]["beat_age_s"] == pytest.approx(3.0)
        assert snap["2"]["meta"] == {"blocks": 4}


class TestHeartbeatSender:
    def test_beat_carries_identity_and_extra(self):
        calls = []

        async def fake_rpc(host, port, mtype, body, **kwargs):
            calls.append((host, port, mtype, body))
            return {}, b""

        sender = HeartbeatSender(5, ("coord", 99), port=1234, rpc=fake_rpc)
        ok = asyncio.run(sender.beat_once({"blocks": 2}))
        assert ok and sender.beats_sent == 1
        host, port, mtype, body = calls[0]
        assert (host, port, mtype) == ("coord", 99, "heartbeat")
        assert body == {"node_id": 5, "host": "127.0.0.1", "port": 1234, "blocks": 2}

    def test_failed_beat_is_counted_not_fatal(self):
        async def dead_rpc(*args, **kwargs):
            raise ConnectionRefusedError("nobody home")

        sender = HeartbeatSender(5, ("coord", 99), port=1234, rpc=dead_rpc)
        ok = asyncio.run(sender.beat_once())
        assert not ok
        assert sender.beats_failed == 1
