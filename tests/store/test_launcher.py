"""Subprocess harness smoke: real processes, real ports, real teardown.

The heavyweight kill→repair path is exercised by
``examples/store_kill_demo.py`` and the CI store-smoke job; this file
keeps the launcher honest on the basics so those bigger runs fail for
interesting reasons only.
"""

import os
import time

import pytest

from repro.store import LauncherError, StoreLauncher
from repro.telemetry import from_jsonl

CONFIG = dict(
    racks=3, per_rack=2, n=3, k=2, block_size=4096,
    suspect_after=2.0, heartbeat_interval=0.3, startup_timeout=45.0,
)


@pytest.fixture
def launcher(tmp_path):
    launcher = StoreLauncher(tmp_path / "cluster")
    yield launcher
    # Belt and braces: never leak processes past the test, even on failure.
    try:
        launcher.down(timeout=5.0)
    except LauncherError:
        pass


class TestLauncher:
    def test_up_put_get_down(self, launcher):
        state = launcher.up(**CONFIG)
        assert len(state["daemons"]) == 6
        try:
            client = launcher.client()
            data = os.urandom(3 * 4096 + 17)
            client.put("obj", data)
            assert client.get("obj") == data

            status = launcher.status()
            assert all(status["processes"].values()), status["processes"]
            assert status["service"]["objects"]["obj"]["size"] == len(data)

            with pytest.raises(LauncherError, match="already up"):
                launcher.up(**CONFIG)
        finally:
            launcher.down()
        # State is gone and every pid is dead.
        with pytest.raises(LauncherError, match="no cluster state"):
            launcher.load_state()
        for pid in state["daemons"].values():
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_sigkilled_daemon_leaves_its_telemetry_behind(self, launcher):
        """ISSUE satellite a: telemetry streams span-by-span, so a
        SIGKILL'd daemon's file still holds everything it recorded —
        there is no graceful-shutdown write to lose."""
        launcher.up(**CONFIG)
        try:
            client = launcher.client()
            data = os.urandom(3 * 4096 + 17)
            client.put("obj", data)

            # Pick a victim that actually served traffic, via the
            # blocks count its heartbeats report (they lag ~0.3s).
            victim = None
            deadline = time.monotonic() + 10.0
            while victim is None and time.monotonic() < deadline:
                nodes = client.status()["nodes"]
                for nid, info in sorted(nodes.items(), key=lambda kv: int(kv[0])):
                    if info.get("meta", {}).get("blocks", 0) > 0:
                        victim = int(nid)
                        break
                else:
                    time.sleep(0.2)
            assert victim is not None, "no daemon ever reported blocks"

            launcher.kill_daemon(victim)
            path = launcher.state_dir / f"telemetry-node-{victim}.jsonl"
            trace = from_jsonl(path.read_text())
            assert trace.meta["node"] == f"node-{victim}"
            # The spans that put its blocks there survived the SIGKILL.
            put_spans = [
                s for s in trace.spans if s.name == "rpc:block.put"
            ]
            assert put_spans, [s.name for s in trace.spans]
            assert all("trace_id" in s.attrs for s in put_spans)
        finally:
            launcher.down()

    def test_down_without_up_fails_loudly(self, launcher):
        with pytest.raises(LauncherError, match="no cluster state"):
            launcher.down()

    def test_kill_daemon_needs_a_cluster(self, launcher):
        with pytest.raises(LauncherError, match="no cluster state"):
            launcher.kill_daemon(0)
