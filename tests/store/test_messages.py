"""RPC message layer: pack/split, round trips, error surfacing."""

import asyncio

import pytest

from repro.live.transport import MemoryStream
from repro.store.messages import (
    PROTOCOL_VERSION,
    StoreError,
    StoreProtocolError,
    _pack,
    _split,
    read_request,
    response_error,
    send_request,
    send_response,
    serve_connection,
)


class TestPackSplit:
    def test_body_and_blob_round_trip(self):
        blen, payload = _pack({"a": 1}, b"\x00\x01\x02")
        body, blob = _split({"blen": blen}, bytearray(payload))
        assert body == {"a": 1}
        assert bytes(blob) == b"\x00\x01\x02"

    def test_empty_body_and_blob(self):
        blen, payload = _pack(None, None)
        assert blen == 0 and payload == b""
        body, blob = _split({"blen": 0}, bytearray())
        assert body == {} and len(blob) == 0

    def test_bad_blen_is_protocol_error(self):
        with pytest.raises(StoreProtocolError):
            _split({"blen": 99}, bytearray(b"short"))
        with pytest.raises(StoreProtocolError):
            _split({"blen": -1}, bytearray(b"x"))

    def test_non_object_body_is_protocol_error(self):
        with pytest.raises(StoreProtocolError, match="JSON object"):
            _split({"blen": 6}, bytearray(b"[1, 2]leftover"))

    def test_garbage_body_is_protocol_error(self):
        with pytest.raises(StoreProtocolError, match="not valid JSON"):
            _split({"blen": 4}, bytearray(b"[1ableftover"))


class TestRequestRoundTrip:
    def _round_trip(self, mtype, body=None, blob=None):
        async def _run():
            client, server = MemoryStream.pair()
            await send_request(client, mtype, body, blob)
            return await read_request(server, timeout=2.0)

        return asyncio.run(_run())

    def test_plain_request(self):
        request = self._round_trip("ping", {"node_id": 3})
        assert request.mtype == "ping"
        assert request.body == {"node_id": 3}
        assert len(request.blob) == 0

    def test_request_with_blob(self):
        request = self._round_trip("block.put", {"key": "b:0:1"}, b"\xffdata")
        assert bytes(request.blob) == b"\xffdata"

    def test_version_mismatch_rejected(self):
        async def _run():
            client, server = MemoryStream.pair()
            from repro.live.wire import send_frame

            await send_frame(
                client, {"t": "ping", "v": PROTOCOL_VERSION + 1, "blen": 0}, b""
            )
            with pytest.raises(StoreProtocolError, match="version"):
                await read_request(server, timeout=2.0)

        asyncio.run(_run())

    def test_typeless_frame_rejected(self):
        async def _run():
            client, server = MemoryStream.pair()
            from repro.live.wire import send_frame

            await send_frame(client, {"v": PROTOCOL_VERSION, "blen": 0}, b"")
            with pytest.raises(StoreProtocolError, match="without a type"):
                await read_request(server, timeout=2.0)

        asyncio.run(_run())


class TestServeConnection:
    def _serve(self, dispatch, mtype="x", body=None, blob=None):
        """Run one request through serve_connection; return response frame."""

        async def _run():
            client, server = MemoryStream.pair()
            serving = asyncio.ensure_future(serve_connection(server, dispatch))
            await send_request(client, mtype, body, blob)
            from repro.live.wire import read_frame

            header, payload = await read_frame(client, timeout=2.0)
            await serving
            return header, payload

        return asyncio.run(_run())

    def test_ok_response(self):
        async def dispatch(request):
            return {"echo": request.body}, None

        header, _ = self._serve(dispatch, body={"v": 7})
        assert header["ok"] is True

    def test_store_error_travels_as_error_response(self):
        async def dispatch(request):
            raise StoreError("no such block")

        header, _ = self._serve(dispatch)
        assert header["ok"] is False
        assert "no such block" in header["error"]

    def test_unexpected_exception_does_not_kill_the_server(self):
        async def dispatch(request):
            raise ValueError("boom")

        header, _ = self._serve(dispatch)
        assert header["ok"] is False
        assert "internal error" in header["error"]

    def test_response_error_shorthand(self):
        async def _run():
            client, server = MemoryStream.pair()
            await response_error(server, "nope")
            from repro.live.wire import read_frame

            header, _ = await read_frame(client, timeout=2.0)
            return header

        header = asyncio.run(_run())
        assert header["ok"] is False and header["error"] == "nope"

    def test_ok_false_raises_store_error_client_side(self):
        async def _run():
            client, server = MemoryStream.pair()
            await send_response(server, ok=False, error="denied")
            # client side of call(): parse the response frame directly
            from repro.live.wire import read_frame

            header, _ = await read_frame(client, timeout=2.0)
            assert not header.get("ok")

        asyncio.run(_run())
