"""Plan partitioning: every scheme's plan must run data-driven across daemons."""

import pytest

from repro.cluster import Cluster, RPRPlacement
from repro.repair import (
    CARRepair,
    RepairContext,
    RepairPlan,
    RPRScheme,
    TraditionalRepair,
    block_key,
    pick_live_spares,
    simulate_repair,
)
from repro.rs import get_code
from repro.store.messages import StoreProtocolError
from repro.store.repair import (
    NodeAssignment,
    ledger_from_reports,
    partition_plan,
    stored_block_key,
)

SCHEMES = [TraditionalRepair(), CARRepair(), RPRScheme()]


def make_ctx(failed=(0,), racks=3, per_rack=2, n=3, k=2, block_size=4096):
    cluster = Cluster.homogeneous(racks, per_rack)
    code = get_code(n, k)
    placement = RPRPlacement().place(cluster, n, k)
    dead = {placement.node_of(b) for b in failed}
    override = pick_live_spares(cluster, placement, failed, dead_nodes=dead)
    return RepairContext(
        code=code,
        cluster=cluster,
        placement=placement,
        failed_blocks=tuple(failed),
        block_size=block_size,
        recovery_override=override,
    )


class TestPartition:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_every_op_lands_exactly_once(self, scheme):
        ctx = make_ctx()
        plan = scheme.plan(ctx)
        parts = partition_plan(plan, ctx.placement, 0, ctx.failed_blocks)
        assigned = [op.op_id for part in parts.values() for op in part.ops]
        assert sorted(assigned) == sorted(plan.ops)

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_outputs_land_at_recovery_nodes(self, scheme):
        ctx = make_ctx()
        plan = scheme.plan(ctx)
        parts = partition_plan(plan, ctx.placement, 7, ctx.failed_blocks)
        committed = {
            bid: (part.node, skey)
            for part in parts.values()
            for bid, _key, skey in part.outputs
        }
        assert set(committed) == set(ctx.failed_blocks)
        for bid, (node, skey) in committed.items():
            assert node == plan.outputs[bid][0]
            assert skey == stored_block_key(7, bid)

    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_seeds_cover_every_read_surviving_block(self, scheme):
        ctx = make_ctx()
        plan = scheme.plan(ctx)
        parts = partition_plan(plan, ctx.placement, 0, ctx.failed_blocks)
        seeded = {key for part in parts.values() for key in part.seeds}
        read = set()
        for op in plan.ops.values():
            keys = [op.key] if hasattr(op, "key") else [k for k, _ in op.terms]
            read.update(keys)
        surviving_keys = {
            block_key(b)
            for b in range(ctx.code.width)
            if b not in ctx.failed_blocks
        }
        assert seeded == read & surviving_keys
        # ... and each seed sits at the node that actually holds the block.
        for part in parts.values():
            for key, skey in part.seeds.items():
                bid = int(key.split(":")[1])
                assert part.node == ctx.placement.node_of(bid)

    def test_double_failure_partitions_too(self):
        # per_rack=3: two dead nodes still leave distinct live spares.
        # CAR is single-failure only (paper §6), so it sits this one out.
        ctx = make_ctx(failed=(0, 1), per_rack=3)
        for scheme in [TraditionalRepair(), RPRScheme()]:
            plan = scheme.plan(ctx)
            parts = partition_plan(plan, ctx.placement, 0, ctx.failed_blocks)
            committed = {bid for p in parts.values() for bid, _, _ in p.outputs}
            assert committed == {0, 1}

    def test_pure_ordering_cross_node_dep_is_rejected(self):
        """A remote dep that carries no payload cannot run data-driven."""
        plan = RepairPlan(block_size=1024)
        plan.add_send("s0", src=0, dst=1, key=block_key(2))
        # Node 2's send depends on node 0's send, but s0 delivers to node
        # 1 — nothing ever arrives at node 2 to signal the dependency.
        plan.add_send("s1", src=2, dst=1, key=block_key(3), deps=("s0",))
        plan.mark_output(9, 1, block_key(3))
        cluster = Cluster.homogeneous(3, 2)
        placement = RPRPlacement().place(cluster, 3, 2)
        with pytest.raises(StoreProtocolError, match="does not deliver"):
            partition_plan(plan, placement, 0, (9,))


class TestAssignmentSerialization:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_round_trips_through_json_shape(self, scheme):
        ctx = make_ctx()
        plan = scheme.plan(ctx)
        parts = partition_plan(plan, ctx.placement, 3, ctx.failed_blocks)
        for part in parts.values():
            back = NodeAssignment.from_dict(part.to_dict())
            assert back.node == part.node
            assert back.seeds == part.seeds
            assert back.outputs == part.outputs
            assert [op.op_id for op in back.ops] == [op.op_id for op in part.ops]
            for a, b in zip(back.ops, part.ops):
                assert a == b


class TestLedger:
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
    def test_plan_sends_aggregate_to_simulator_ledger(self, scheme):
        """Replaying the plan's sends as reports matches the simulator.

        This is the coordinator's cross-validation in miniature: the
        measured ledger is built from daemon op reports, and those
        reports are one entry per plan send — so a faithful execution
        must reproduce the simulator's byte counts exactly.
        """
        from repro.cluster import SIMICS_BANDWIDTH

        ctx = make_ctx()
        plan = scheme.plan(ctx)
        reports = [
            {
                "kind": "send",
                "src": op.src,
                "dst": op.dst,
                "nbytes": ctx.block_size,
            }
            for op in plan.sends()
        ]
        reports += [{"kind": "combine"} for _ in plan.combines()]
        ledger = ledger_from_reports(ctx.cluster, reports)
        outcome = simulate_repair(scheme, ctx, SIMICS_BANDWIDTH)
        assert ledger["cross_rack_bytes"] == int(outcome.cross_rack_bytes)
        assert ledger["intra_rack_bytes"] == int(outcome.intra_rack_bytes)
        assert ledger["sends"] == len(plan.sends())
        assert ledger["combines"] == len(plan.combines())
