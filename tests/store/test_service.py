"""End-to-end service tests: coordinator + daemons over real localhost TCP.

Everything here runs the *real* components — real sockets, real frames,
real GF arithmetic — only inside one process (separate asyncio tasks)
so failures are debuggable and CI-cheap.  The true multi-process path
is covered by ``test_launcher.py`` and the CI store-smoke job.
"""

import asyncio
import os

import pytest

from repro.cluster import Cluster
from repro.live import audit_store_repairs
from repro.rs import get_code
from repro.store import Coordinator, StorageDaemon, StoreClient, StoreError

BLOCK = 2048
RACKS, PER_RACK, N, K = 3, 2, 3, 2


class Service:
    """One in-process cluster: coordinator + a daemon per node."""

    def __init__(self, scheme="rpr", suspect_after=0.8, heartbeat=0.15):
        self.cluster = Cluster.homogeneous(RACKS, PER_RACK)
        self.coordinator = Coordinator(
            self.cluster,
            get_code(N, K),
            scheme=scheme,
            block_size=BLOCK,
            suspect_after=suspect_after,
            sweep_interval=0.1,
        )
        self.heartbeat = heartbeat
        self.daemons: dict[int, StorageDaemon] = {}
        self.client: StoreClient | None = None

    async def __aenter__(self):
        port = await self.coordinator.start()
        for nid in self.cluster.node_ids():
            daemon = StorageDaemon(
                nid, ("127.0.0.1", port), heartbeat_interval=self.heartbeat
            )
            await daemon.start()
            self.daemons[nid] = daemon
        self.client = StoreClient("127.0.0.1", port)
        deadline = asyncio.get_event_loop().time() + 10.0
        while True:
            status = await self.client.status()
            if sum(1 for e in status["nodes"].values() if e["alive"]) == len(self.daemons):
                return self
            if asyncio.get_event_loop().time() > deadline:
                raise AssertionError("daemons never registered")
            await asyncio.sleep(0.05)

    async def __aexit__(self, *exc):
        for daemon in self.daemons.values():
            await daemon.aclose()
        await self.coordinator.aclose()

    async def kill(self, node_id: int) -> None:
        """In-process stand-in for SIGKILL: stop serving AND beating."""
        await self.daemons.pop(node_id).aclose()


class TestObjectPath:
    def test_put_get_delete_round_trip(self):
        async def _run():
            async with Service() as svc:
                data = os.urandom(N * BLOCK * 2 + 777)  # 3 stripes, ragged tail
                await svc.client.put("obj", data)
                assert await svc.client.get("obj") == data
                listing = await svc.client.list_objects()
                assert [o["name"] for o in listing] == ["obj"]
                await svc.client.delete("obj")
                with pytest.raises(StoreError, match="no object"):
                    await svc.client.get("obj")
                # Daemons must actually be empty again.
                for daemon in svc.daemons.values():
                    assert daemon.blocks == {}

        asyncio.run(_run())

    def test_duplicate_put_rejected(self):
        async def _run():
            async with Service() as svc:
                await svc.client.put("obj", b"x" * 100)
                with pytest.raises(StoreError, match="already exists"):
                    await svc.client.put("obj", b"y" * 100)

        asyncio.run(_run())

    def test_commit_with_wrong_bytes_rejected(self):
        """The coordinator verifies daemons against claimed CRCs."""

        async def _run():
            async with Service() as svc:
                client = svc.client
                grant = await client._coordinator(
                    "put.begin", {"name": "obj", "size": 10, "nstripes": 1}
                )
                # Claim CRCs for blocks nobody ever wrote.
                claims = [{
                    "sid": grant["stripes"][0]["sid"],
                    "crcs": {str(b): 1 for b in range(N + K)},
                }]
                with pytest.raises(StoreError, match="holds no block"):
                    await client._coordinator(
                        "put.commit", {"name": "obj", "stripes": claims}
                    )

        asyncio.run(_run())


class TestKillAndRepair:
    @pytest.mark.parametrize("scheme", ["traditional", "car", "rpr"])
    def test_daemon_death_triggers_byte_exact_repair(self, scheme):
        async def _run():
            async with Service(scheme=scheme) as svc:
                data = os.urandom(N * BLOCK + 99)  # 2 stripes
                await svc.client.put("obj", data)
                # Kill the daemon holding stripe 0's block 0.
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                await svc.kill(victim)
                status = await svc.client.wait_healthy(
                    timeout=20.0, min_repairs=1
                )
                # Every repair record must be byte-ledger-exact vs the
                # simulator (CRC exactness is enforced inside the
                # coordinator: a mismatch fails the repair entirely).
                assert status["repairs"], "no repair ran"
                for record in status["repairs"]:
                    assert record["scheme"] == scheme
                    assert record["ledger_match"], record
                    assert (
                        record["measured"]["cross_rack_bytes"]
                        == record["simulated"]["cross_rack_bytes"]
                    )
                # The validate-layer audit must agree with the records.
                audit = audit_store_repairs(status["repairs"])
                assert audit.ledger_ok and audit.repairs == len(status["repairs"])
                assert (
                    audit.measured_cross_rack_bytes
                    == audit.simulated_cross_rack_bytes
                )
                # Placement no longer references the dead node...
                for meta in svc.coordinator.stripes.values():
                    assert victim not in meta.placement.block_to_node.values()
                # ...and the object reads back byte-identical.
                assert await svc.client.get("obj") == data

        asyncio.run(_run())

    def test_repair_lands_blocks_on_live_spares_only(self):
        async def _run():
            async with Service() as svc:
                data = os.urandom(N * BLOCK)
                await svc.client.put("obj", data)
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                await svc.kill(victim)
                await svc.client.wait_healthy(timeout=20.0, min_repairs=1)
                alive = svc.coordinator.detector.alive_ids()
                for meta in svc.coordinator.stripes.values():
                    assert set(meta.placement.block_to_node.values()) <= alive
                    assert not meta.missing
                # The rebuilt block physically exists on its new node.
                for record in svc.coordinator.repairs:
                    for bid_s, node in record["targets"].items():
                        key = f"b:{record['sid']}:{bid_s}"
                        assert key in svc.daemons[node].blocks

        asyncio.run(_run())

    def test_telemetry_spans_cover_all_three_components(self):
        async def _run():
            async with Service() as svc:
                data = os.urandom(N * BLOCK)
                await svc.client.put("obj", data)
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                await svc.kill(victim)
                await svc.client.wait_healthy(timeout=20.0, min_repairs=1)
                await svc.client.get("obj")

                coord_trace = svc.coordinator.rec.trace()
                assert any(
                    s.category == "repair" for s in coord_trace.spans
                ), "coordinator recorded no repair span"
                daemon_spans = [
                    span
                    for daemon in svc.daemons.values()
                    for span in daemon.rec.trace().spans
                ]
                assert any(s.category == "op" for s in daemon_spans), (
                    "no daemon recorded repair op spans"
                )
                client_trace = svc.client.rec.trace()
                assert {s.attrs.get("op") for s in client_trace.spans if s.category == "client"} >= {"put", "get"}

        asyncio.run(_run())

    def test_degraded_get_names_the_problem(self):
        """A GET during the degraded window fails loudly, never hangs."""

        async def _run():
            async with Service(suspect_after=30.0) as svc:
                # suspect_after is huge: the coordinator will NOT notice
                # the death, freezing the degraded window open.
                data = os.urandom(N * BLOCK)
                await svc.client.put("obj", data)
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                await svc.kill(victim)
                svc.coordinator.on_nodes_dead([])  # no-op: nothing detected
                # Mark missing manually (what detection would have done)
                # without triggering repair, to pin the degraded read path.
                svc.coordinator.stripes[0].missing.add(0)
                with pytest.raises(StoreError, match="degraded"):
                    await svc.client.get("obj")

        asyncio.run(_run())
