"""End-to-end service tests: coordinator + daemons over real localhost TCP.

Everything here runs the *real* components — real sockets, real frames,
real GF arithmetic — only inside one process (separate asyncio tasks)
so failures are debuggable and CI-cheap.  The true multi-process path
is covered by ``test_launcher.py`` and the CI store-smoke job.
"""

import asyncio
import os

import pytest

from repro.cluster import Cluster
from repro.live import audit_store_repairs
from repro.rs import get_code
from repro.store import Coordinator, StorageDaemon, StoreClient, StoreError
from repro.telemetry import (
    assemble_trace,
    build_tree,
    from_jsonl,
    to_chrome_trace,
    to_jsonl,
    trace_ids,
)

BLOCK = 2048
RACKS, PER_RACK, N, K = 3, 2, 3, 2


class Service:
    """One in-process cluster: coordinator + a daemon per node."""

    def __init__(
        self,
        scheme="rpr",
        suspect_after=0.8,
        heartbeat=0.15,
        racks=RACKS,
        per_rack=PER_RACK,
        n=N,
        k=K,
    ):
        self.cluster = Cluster.homogeneous(racks, per_rack)
        self.n, self.k = n, k
        self.coordinator = Coordinator(
            self.cluster,
            get_code(n, k),
            scheme=scheme,
            block_size=BLOCK,
            suspect_after=suspect_after,
            sweep_interval=0.1,
        )
        self.heartbeat = heartbeat
        self.daemons: dict[int, StorageDaemon] = {}
        self.client: StoreClient | None = None

    async def __aenter__(self):
        port = await self.coordinator.start()
        for nid in self.cluster.node_ids():
            daemon = StorageDaemon(
                nid, ("127.0.0.1", port), heartbeat_interval=self.heartbeat
            )
            await daemon.start()
            self.daemons[nid] = daemon
        self.client = StoreClient("127.0.0.1", port)
        deadline = asyncio.get_event_loop().time() + 10.0
        while True:
            status = await self.client.status()
            if sum(1 for e in status["nodes"].values() if e["alive"]) == len(self.daemons):
                return self
            if asyncio.get_event_loop().time() > deadline:
                raise AssertionError("daemons never registered")
            await asyncio.sleep(0.05)

    async def __aexit__(self, *exc):
        for daemon in self.daemons.values():
            await daemon.aclose()
        await self.coordinator.aclose()

    async def kill(self, node_id: int) -> None:
        """In-process stand-in for SIGKILL: stop serving AND beating."""
        await self.daemons.pop(node_id).aclose()


class TestObjectPath:
    def test_put_get_delete_round_trip(self):
        async def _run():
            async with Service() as svc:
                data = os.urandom(N * BLOCK * 2 + 777)  # 3 stripes, ragged tail
                await svc.client.put("obj", data)
                assert await svc.client.get("obj") == data
                listing = await svc.client.list_objects()
                assert [o["name"] for o in listing] == ["obj"]
                await svc.client.delete("obj")
                with pytest.raises(StoreError, match="no object"):
                    await svc.client.get("obj")
                # Daemons must actually be empty again.
                for daemon in svc.daemons.values():
                    assert daemon.blocks == {}

        asyncio.run(_run())

    def test_duplicate_put_rejected(self):
        async def _run():
            async with Service() as svc:
                await svc.client.put("obj", b"x" * 100)
                with pytest.raises(StoreError, match="already exists"):
                    await svc.client.put("obj", b"y" * 100)

        asyncio.run(_run())

    def test_commit_with_wrong_bytes_rejected(self):
        """The coordinator verifies daemons against claimed CRCs."""

        async def _run():
            async with Service() as svc:
                client = svc.client
                grant = await client._coordinator(
                    "put.begin", {"name": "obj", "size": 10, "nstripes": 1}
                )
                # Claim CRCs for blocks nobody ever wrote.
                claims = [{
                    "sid": grant["stripes"][0]["sid"],
                    "crcs": {str(b): 1 for b in range(N + K)},
                }]
                with pytest.raises(StoreError, match="holds no block"):
                    await client._coordinator(
                        "put.commit", {"name": "obj", "stripes": claims}
                    )

        asyncio.run(_run())


class TestKillAndRepair:
    @pytest.mark.parametrize("scheme", ["traditional", "car", "rpr"])
    def test_daemon_death_triggers_byte_exact_repair(self, scheme):
        async def _run():
            async with Service(scheme=scheme) as svc:
                data = os.urandom(N * BLOCK + 99)  # 2 stripes
                await svc.client.put("obj", data)
                # Kill the daemon holding stripe 0's block 0.
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                await svc.kill(victim)
                status = await svc.client.wait_healthy(
                    timeout=20.0, min_repairs=1
                )
                # Every repair record must be byte-ledger-exact vs the
                # simulator (CRC exactness is enforced inside the
                # coordinator: a mismatch fails the repair entirely).
                assert status["repairs"], "no repair ran"
                for record in status["repairs"]:
                    assert record["scheme"] == scheme
                    assert record["ledger_match"], record
                    assert (
                        record["measured"]["cross_rack_bytes"]
                        == record["simulated"]["cross_rack_bytes"]
                    )
                # The validate-layer audit must agree with the records.
                audit = audit_store_repairs(status["repairs"])
                assert audit.ledger_ok and audit.repairs == len(status["repairs"])
                assert (
                    audit.measured_cross_rack_bytes
                    == audit.simulated_cross_rack_bytes
                )
                # Placement no longer references the dead node...
                for meta in svc.coordinator.stripes.values():
                    assert victim not in meta.placement.block_to_node.values()
                # ...and the object reads back byte-identical.
                assert await svc.client.get("obj") == data

        asyncio.run(_run())

    def test_repair_lands_blocks_on_live_spares_only(self):
        async def _run():
            async with Service() as svc:
                data = os.urandom(N * BLOCK)
                await svc.client.put("obj", data)
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                await svc.kill(victim)
                await svc.client.wait_healthy(timeout=20.0, min_repairs=1)
                alive = svc.coordinator.detector.alive_ids()
                for meta in svc.coordinator.stripes.values():
                    assert set(meta.placement.block_to_node.values()) <= alive
                    assert not meta.missing
                # The rebuilt block physically exists on its new node.
                for record in svc.coordinator.repairs:
                    for bid_s, node in record["targets"].items():
                        key = f"b:{record['sid']}:{bid_s}"
                        assert key in svc.daemons[node].blocks

        asyncio.run(_run())

    def test_telemetry_spans_cover_all_three_components(self):
        async def _run():
            async with Service() as svc:
                data = os.urandom(N * BLOCK)
                await svc.client.put("obj", data)
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                await svc.kill(victim)
                await svc.client.wait_healthy(timeout=20.0, min_repairs=1)
                await svc.client.get("obj")

                coord_trace = svc.coordinator.rec.trace()
                assert any(
                    s.category == "repair" for s in coord_trace.spans
                ), "coordinator recorded no repair span"
                daemon_spans = [
                    span
                    for daemon in svc.daemons.values()
                    for span in daemon.rec.trace().spans
                ]
                assert any(s.category == "op" for s in daemon_spans), (
                    "no daemon recorded repair op spans"
                )
                client_trace = svc.client.rec.trace()
                assert {s.attrs.get("op") for s in client_trace.spans if s.category == "client"} >= {"put", "get"}

        asyncio.run(_run())

    def test_kill_repair_yields_one_connected_distributed_trace(self):
        """ISSUE satellite c: after a kill→repair round, merging every
        component's telemetry must produce ONE connected tree per repair
        — the coordinator's ``repair:<rid>`` root with every daemon's
        repair spans descending from it — and the assembled trace must
        survive the JSONL and Perfetto exporters unchanged."""

        async def _run():
            async with Service() as svc:
                data = os.urandom(N * BLOCK + 99)  # 2 stripes
                await svc.client.put("obj", data)
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                # Grab the victim daemon before kill() pops it: its
                # pre-kill spans must participate in the assembly.
                victim_daemon = svc.daemons[victim]
                await svc.kill(victim)
                await svc.client.wait_healthy(timeout=20.0, min_repairs=1)

                merged = assemble_trace(
                    [
                        ("client", svc.client.rec.trace()),
                        ("coordinator", svc.coordinator.rec.trace()),
                        (f"node-{victim}", victim_daemon.rec.trace()),
                        *(
                            (f"node-{nid}", daemon.rec.trace())
                            for nid, daemon in svc.daemons.items()
                        ),
                    ]
                )

                repair_traces = 0
                for tid in trace_ids(merged):
                    roots = build_tree(merged, tid)
                    if not any(
                        r.span.name.startswith("repair:") for r in roots
                    ):
                        continue
                    repair_traces += 1
                    # One logical repair == one connected tree: every
                    # span in this trace id descends from a single root.
                    assert len(roots) == 1, [r.span.name for r in roots]
                    root = roots[0]
                    assert root.proc == "coordinator"
                    descendants = []
                    stack = list(root.children)
                    while stack:
                        node = stack.pop()
                        descendants.append(node)
                        stack.extend(node.children)
                    # The coordinator fanned out over the wire...
                    assert any(
                        n.span.name == "rpc:repair.exec" for n in descendants
                    )
                    # ...and every daemon-side repair span is linked in.
                    daemon_repairs = [
                        n
                        for n in descendants
                        if n.span.name.startswith("repair:")
                        and n.proc.startswith("node-")
                    ]
                    assert daemon_repairs, "no daemon repair spans in tree"
                    in_trace = [
                        s
                        for s in merged.spans
                        if s.attrs.get("trace_id") == tid
                        and s.name.startswith("repair:")
                        and str(s.attrs.get("proc", "")).startswith("node-")
                    ]
                    assert len(daemon_repairs) == len(in_trace)
                assert repair_traces >= 1, "no repair trace assembled"

                # The assembled trace is a plain TelemetryTrace: both
                # exporters must accept it, and JSONL must round-trip.
                clone = from_jsonl(to_jsonl(merged))
                assert to_jsonl(clone) == to_jsonl(merged)
                chrome = to_chrome_trace([("assembled", merged)])
                assert any(
                    e["ph"] == "X" and e["name"].startswith("repair:")
                    for e in chrome["traceEvents"]
                )

        asyncio.run(_run())

    def test_wait_healthy_fails_fast_when_the_service_cannot_self_heal(self):
        """Losing more blocks than k is a verdict, not something to poll.

        The pinned message matters: operators read it at 3am — it must
        say that waiting will not fix anything.
        """

        async def _run():
            async with Service(suspect_after=30.0) as svc:
                data = os.urandom(N * BLOCK - 17)  # one stripe
                await svc.client.put("obj", data)
                placement = svc.coordinator.stripes[0].placement
                doomed = [placement.node_of(bid) for bid in range(K + 1)]
                svc.coordinator.on_nodes_dead(doomed)
                loop = asyncio.get_event_loop()
                start = loop.time()
                with pytest.raises(StoreError, match="cannot self-heal"):
                    await svc.client.wait_healthy(timeout=30.0)
                # Fail-fast, not a timeout wait: the planning-level
                # verdict must surface in a poll or two.
                assert loop.time() - start < 10.0

        asyncio.run(_run())

    def test_degraded_get_names_the_problem(self):
        """A GET during the degraded window fails loudly, never hangs."""

        async def _run():
            async with Service(suspect_after=30.0) as svc:
                # suspect_after is huge: the coordinator will NOT notice
                # the death, freezing the degraded window open.
                data = os.urandom(N * BLOCK)
                await svc.client.put("obj", data)
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                await svc.kill(victim)
                svc.coordinator.on_nodes_dead([])  # no-op: nothing detected
                # Mark missing manually (what detection would have done)
                # without triggering repair, to pin the degraded read path.
                svc.coordinator.stripes[0].missing.add(0)
                with pytest.raises(StoreError, match="degraded"):
                    await svc.client.get("obj")

        asyncio.run(_run())


class TestDegradedReads:
    """User GETs keep working while blocks are gone — the QoS plane's
    first pillar (docs/QOS.md).  The ISSUE acceptance matrix: every
    scheme on RS(6,3) and RS(8,3) (plus the default RS(3,2)) must serve
    byte-identical reads with a daemon dead."""

    #: (n, k, racks, per_rack): enough rack slots for the placement and
    #: at least one live spare per rack for the repair that follows.
    SHAPES = [(3, 2, 3, 2), (6, 3, 3, 4), (8, 3, 4, 4)]

    @pytest.mark.parametrize("scheme", ["traditional", "car", "rpr"])
    @pytest.mark.parametrize("shape", SHAPES)
    def test_degraded_get_is_byte_identical_with_a_daemon_dead(self, scheme, shape):
        n, k, racks, per_rack = shape

        async def _run():
            # suspect_after is huge so detection/repair never races the
            # read: the window is frozen open, the GET must reconstruct.
            async with Service(
                scheme=scheme, suspect_after=30.0,
                racks=racks, per_rack=per_rack, n=n, k=k,
            ) as svc:
                data = os.urandom(n * BLOCK + 123)  # 2 stripes, ragged tail
                await svc.client.put("obj", data)
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                await svc.kill(victim)
                got, report = await svc.client.get_with_report(
                    "obj", degraded=True
                )
                assert got == data
                assert report["degraded"]
                assert report["reconstructed"]
                assert {e["mode"] for e in report["reconstructed"]} <= {
                    "plan", "decode",
                }

        asyncio.run(_run())

    @pytest.mark.parametrize("scheme", ["traditional", "car", "rpr"])
    def test_degraded_gets_stay_byte_identical_through_a_live_repair(self, scheme):
        """PUT → kill → read continuously until the repair finishes.

        Every read during the window must return the written bytes; at
        least the first must actually have reconstructed (the kill lands
        before detection, so block 0 is unreachable immediately).
        """

        async def _run():
            async with Service(scheme=scheme) as svc:
                data = os.urandom(N * BLOCK + 99)
                await svc.client.put("obj", data)
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                await svc.kill(victim)
                degraded_seen = 0
                deadline = asyncio.get_event_loop().time() + 20.0
                while True:
                    got, report = await svc.client.get_with_report(
                        "obj", degraded=True
                    )
                    assert got == data
                    degraded_seen += report["degraded"]
                    status = await svc.client.status()
                    healthy = (
                        not status["degraded"]
                        and not status["repairing"]
                        and status["repairs"]
                    )
                    if healthy:
                        break
                    assert asyncio.get_event_loop().time() < deadline, (
                        "repair never finished"
                    )
                    await asyncio.sleep(0.05)
                assert degraded_seen >= 1
                # Healthy again: the plain path serves the same bytes.
                assert await svc.client.get("obj") == data

        asyncio.run(_run())

    def test_rpr_degraded_get_prefers_the_scheme_plan(self):
        """Once the coordinator has marked the block missing, the lookup
        ships a degraded-read plan and the client executes it instead of
        falling back to a full decode."""

        async def _run():
            async with Service(suspect_after=30.0) as svc:
                data = os.urandom(N * BLOCK - 5)  # one stripe
                await svc.client.put("obj", data)
                victim = svc.coordinator.stripes[0].placement.node_of(0)
                await svc.kill(victim)
                # What detection would have done, minus the repair kick:
                # the coordinator knows block 0 is gone and can plan.
                svc.coordinator.stripes[0].missing.add(0)
                got, report = await svc.client.get_with_report(
                    "obj", degraded=True
                )
                assert got == data
                assert [e["mode"] for e in report["reconstructed"]] == ["plan"]

        asyncio.run(_run())

    def test_healthy_get_fetches_stripe_blocks_concurrently(self, monkeypatch):
        """All n data blocks of a stripe are fetched in parallel: each
        block.get blocks until every sibling is in flight, so a
        sequential client would deadlock here (and fail the timeout)."""
        from repro.store import client as client_mod

        real_call = client_mod.call
        gate = asyncio.Event()
        inflight = 0

        async def gated_call(host, port, mtype, body=None, blob=None, **kw):
            nonlocal inflight
            if mtype == "block.get":
                inflight += 1
                if inflight == N:
                    gate.set()
                await asyncio.wait_for(gate.wait(), timeout=5.0)
            return await real_call(host, port, mtype, body, blob, **kw)

        async def _run():
            async with Service() as svc:
                data = os.urandom(N * BLOCK - 1)  # one stripe
                await svc.client.put("obj", data)
                monkeypatch.setattr(client_mod, "call", gated_call)
                assert await svc.client.get("obj") == data
                assert inflight == N

        asyncio.run(_run())
