"""Tests for the object-to-stripe mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system import ObjectInfo, reassemble, split_into_stripes


class TestSplit:
    def test_exact_fit(self):
        data = np.arange(12, dtype=np.uint8)
        stripes = split_into_stripes(data, n=3, block_size=4)
        assert len(stripes) == 1
        assert len(stripes[0]) == 3
        np.testing.assert_array_equal(stripes[0][0], data[:4])

    def test_padding(self):
        data = np.arange(5, dtype=np.uint8)
        stripes = split_into_stripes(data, n=2, block_size=4)
        assert len(stripes) == 1
        np.testing.assert_array_equal(
            stripes[0][1], np.array([4, 0, 0, 0], dtype=np.uint8)
        )

    def test_multiple_stripes(self):
        data = np.arange(20, dtype=np.uint8)
        stripes = split_into_stripes(data, n=2, block_size=4)
        assert len(stripes) == 3  # 20 bytes / 8 per stripe -> 3 stripes

    def test_empty_object_occupies_one_stripe(self):
        stripes = split_into_stripes(np.array([], dtype=np.uint8), 2, 4)
        assert len(stripes) == 1
        assert all(np.all(b == 0) for b in stripes[0])

    def test_blocks_are_views_of_contiguous_buffer(self):
        data = np.arange(8, dtype=np.uint8)
        stripes = split_into_stripes(data, 2, 4)
        for block in stripes[0]:
            assert block.dtype == np.uint8 and block.shape == (4,)


class TestReassemble:
    @given(st.integers(0, 200), st.integers(1, 4), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, size, n, block_size):
        rng = np.random.default_rng(size)
        data = rng.integers(0, 256, size, dtype=np.uint8)
        stripes = split_into_stripes(data, n, block_size)
        info = ObjectInfo(
            name="x",
            size=size,
            stripe_ids=tuple(range(len(stripes))),
            block_size=block_size,
            n=n,
        )
        np.testing.assert_array_equal(reassemble(info, stripes), data)

    def test_stripe_count_mismatch(self):
        info = ObjectInfo(name="x", size=4, stripe_ids=(0, 1), block_size=4, n=1)
        with pytest.raises(ValueError):
            reassemble(info, [[np.zeros(4, dtype=np.uint8)]])

    def test_stripe_capacity(self):
        info = ObjectInfo(name="x", size=4, stripe_ids=(0,), block_size=8, n=3)
        assert info.stripe_capacity == 24
