"""Tests for the StorageSystem facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.rs import get_code
from repro.repair import CARRepair, TraditionalRepair
from repro.system import DegradedObjectError, StorageError, StorageSystem


def make_system(n=6, k=2, block_size=256, scheme=None):
    cluster = Cluster.homogeneous(5, 6)
    return StorageSystem(
        cluster, get_code(n, k), block_size=block_size, scheme=scheme
    )


def payload(size, seed=0):
    return np.random.default_rng(seed).integers(0, 256, size, dtype=np.uint8)


class TestPutGet:
    def test_roundtrip_single_stripe(self):
        system = make_system()
        data = payload(100)
        system.put("a", data)
        np.testing.assert_array_equal(system.get("a"), data)

    def test_roundtrip_multi_stripe(self):
        system = make_system()
        data = payload(5000)  # > 6 * 256 bytes -> several stripes
        info = system.put("big", data)
        assert len(info.stripe_ids) > 1
        np.testing.assert_array_equal(system.get("big"), data)

    def test_bytes_input(self):
        system = make_system()
        system.put("b", b"hello world")
        assert bytes(system.get("b")) == b"hello world"

    def test_empty_object(self):
        system = make_system()
        system.put("empty", b"")
        assert system.get("empty").size == 0

    def test_multiple_objects(self):
        system = make_system()
        blobs = {f"o{i}": payload(300 + i, seed=i) for i in range(5)}
        for name, data in blobs.items():
            system.put(name, data)
        for name, data in blobs.items():
            np.testing.assert_array_equal(system.get(name), data)
        assert len(system.objects()) == 5

    def test_duplicate_name_rejected(self):
        system = make_system()
        system.put("a", b"x")
        with pytest.raises(StorageError):
            system.put("a", b"y")

    def test_missing_object(self):
        with pytest.raises(StorageError):
            make_system().get("ghost")

    def test_verify_clean_system(self):
        system = make_system()
        system.put("a", payload(2000))
        assert system.verify()


class TestFailures:
    def test_fail_node_reports_lost_blocks(self):
        system = make_system()
        system.put("a", payload(5000))
        lost = system.fail_node(0)
        assert lost >= 0
        assert (lost > 0) == bool(system.degraded_stripes())

    def test_fail_node_idempotent(self):
        system = make_system()
        system.put("a", payload(5000))
        first = system.fail_node(0)
        assert system.fail_node(0) == 0
        assert first >= 0

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            make_system().fail_node(999)

    def test_plain_get_raises_when_degraded(self):
        system = make_system()
        data = payload(5000)
        system.put("a", data)
        # fail nodes until a data block of the object is gone
        for node in system.cluster.node_ids():
            system.fail_node(node)
            if system.degraded_stripes():
                break
        with pytest.raises(DegradedObjectError):
            system.get("a")

    def test_degraded_get_returns_original(self):
        system = make_system()
        data = payload(5000)
        system.put("a", data)
        system.fail_node(0)
        live = [n for n in system.cluster.node_ids() if n != 0]
        np.testing.assert_array_equal(
            system.get("a", client_node=live[-1]), data
        )

    def test_verify_false_when_degraded(self):
        system = make_system()
        system.put("a", payload(5000))
        system.fail_node(0)
        if system.degraded_stripes():
            assert not system.verify()


class TestRepair:
    def test_repair_restores_everything(self):
        system = make_system()
        data = payload(8000)
        system.put("a", data)
        lost = system.fail_node(0)
        report = system.repair()
        assert report.blocks_repaired == lost
        assert system.degraded_stripes() == []
        assert system.verify()
        np.testing.assert_array_equal(system.get("a"), data)

    def test_repair_reports_simulated_cost(self):
        system = make_system()
        system.put("a", payload(8000))
        system.fail_node(0)
        report = system.repair()
        if report.blocks_repaired:
            assert report.simulated_seconds > 0
            assert report.simulated_cross_rack_bytes > 0

    def test_repair_noop_when_clean(self):
        system = make_system()
        system.put("a", payload(1000))
        report = system.repair()
        assert report.blocks_repaired == 0
        assert report.simulated_seconds == 0

    def test_placement_updated_to_live_nodes(self):
        system = make_system()
        system.put("a", payload(8000))
        system.fail_node(0)
        system.repair()
        for state in system._stripes:
            for node in state.stored.placement.block_to_node.values():
                assert node not in system._dead_nodes

    def test_sequential_failures_up_to_tolerance(self):
        """k=2: two separate failure+repair cycles keep everything intact."""
        system = make_system()
        data = payload(8000)
        system.put("a", data)
        system.fail_node(0)
        system.repair()
        system.fail_node(6)
        system.repair()
        assert system.verify()
        np.testing.assert_array_equal(system.get("a"), data)

    def test_concurrent_failures_within_tolerance(self):
        system = make_system()
        data = payload(8000)
        system.put("a", data)
        # two nodes in different racks: at most 2 blocks per stripe lost
        system.fail_node(0)
        system.fail_node(6)
        system.repair()
        assert system.verify()
        np.testing.assert_array_equal(system.get("a"), data)

    def test_revive_node_restores_capacity(self):
        system = make_system()
        system.put("a", payload(2000))
        system.fail_node(0)
        system.repair()
        system.revive_node(0)
        system.put("b", payload(500, seed=9))
        assert system.verify()

    @pytest.mark.parametrize(
        "scheme", [TraditionalRepair(), CARRepair()], ids=lambda s: s.name
    )
    def test_alternative_schemes(self, scheme):
        system = make_system(scheme=scheme)
        data = payload(5000)
        system.put("a", data)
        system.fail_node(0)
        # CAR handles one failure per stripe — a single node failure
        # qualifies (one block per stripe).
        system.repair()
        np.testing.assert_array_equal(system.get("a"), data)


class TestPropertyRoundtrips:
    @given(
        st.integers(1, 6000),
        st.integers(0, 2**31 - 1),
        st.sampled_from([(4, 2), (6, 2), (6, 3)]),
    )
    @settings(max_examples=15, deadline=None)
    def test_put_fail_repair_get(self, size, seed, nk):
        n, k = nk
        system = make_system(n=n, k=k)
        data = payload(size, seed=seed)
        system.put("obj", data)
        victim = seed % system.cluster.num_nodes
        system.fail_node(victim)
        system.repair()
        assert system.verify()
        np.testing.assert_array_equal(system.get("obj"), data)


class TestScrubbing:
    def test_clean_system_scrubs_empty(self):
        system = make_system()
        system.put("a", payload(2000))
        assert system.scrub() == []

    def test_corruption_detected_and_localised(self):
        system = make_system()
        system.put("a", payload(5000))
        system.corrupt_block(0, 2, byte_index=17)
        assert system.scrub() == [(0, 2)]

    def test_corruption_invisible_to_fail_tracking(self):
        system = make_system()
        system.put("a", payload(5000))
        system.corrupt_block(0, 1)
        assert system.degraded_stripes() == []  # silent!
        assert not system.verify()              # ...but data is wrong

    def test_repair_corruption_restores_bytes(self):
        system = make_system()
        data = payload(5000)
        system.put("a", data)
        system.corrupt_block(0, 0, byte_index=3)
        system.corrupt_block(1, 4, byte_index=9)
        report = system.repair_corruption()
        assert report.blocks_repaired == 2
        assert system.scrub() == []
        assert system.verify()
        np.testing.assert_array_equal(system.get("a"), data)

    def test_corrupt_parity_repaired_too(self):
        system = make_system()
        data = payload(3000)
        system.put("a", data)
        parity_block = system.code.n  # P0
        system.corrupt_block(0, parity_block)
        assert system.scrub() == [(0, parity_block)]
        system.repair_corruption()
        assert system.verify()

    def test_corrupt_unknown_block_rejected(self):
        system = make_system()
        system.put("a", payload(100))
        with pytest.raises(IndexError):
            system.corrupt_block(99, 0)
        # corrupting a block on a dead node is an error (payload is gone)
        system.fail_node(system._stripes[0].stored.placement.node_of(0))
        with pytest.raises(StorageError):
            system.corrupt_block(0, 0)

    def test_corruption_plus_node_failure(self):
        """Corruption and an erasure in the same stripe (within k=2)."""
        system = make_system()
        data = payload(5000)
        system.put("a", data)
        system.corrupt_block(0, 1)
        victim = system._stripes[0].stored.placement.node_of(3)
        system.fail_node(victim)
        system.repair_corruption()
        assert system.verify()
        np.testing.assert_array_equal(system.get("a"), data)


class TestOverwrite:
    def test_overwrite_changes_content(self):
        system = make_system()
        old = payload(3000, seed=1)
        new = payload(3000, seed=2)
        system.put("a", old)
        updated = system.overwrite("a", new)
        assert updated > 0
        np.testing.assert_array_equal(system.get("a"), new)

    def test_overwrite_keeps_codewords_valid(self):
        system = make_system()
        system.put("a", payload(5000, seed=3))
        system.overwrite("a", payload(5000, seed=4))
        assert system.verify()
        assert system.scrub() == []

    def test_unchanged_blocks_skipped(self):
        system = make_system()
        data = payload(3000, seed=5)
        system.put("a", data)
        modified = data.copy()
        modified[0] ^= 0xFF  # touch only the first block
        updated = system.overwrite("a", modified)
        assert updated == 1
        np.testing.assert_array_equal(system.get("a"), modified)

    def test_identical_overwrite_is_noop(self):
        system = make_system()
        data = payload(2000, seed=6)
        system.put("a", data)
        assert system.overwrite("a", data) == 0

    def test_size_change_rejected(self):
        system = make_system()
        system.put("a", payload(1000))
        with pytest.raises(StorageError):
            system.overwrite("a", payload(1001))

    def test_unknown_object_rejected(self):
        with pytest.raises(StorageError):
            make_system().overwrite("ghost", b"x")

    def test_degraded_stripe_rejected(self):
        system = make_system()
        data = payload(5000, seed=7)
        system.put("a", data)
        # kill nodes until some stripe of the object is degraded
        for node in system.cluster.node_ids():
            system.fail_node(node)
            if system.degraded_stripes():
                break
        with pytest.raises(StorageError):
            system.overwrite("a", payload(5000, seed=8))

    def test_overwrite_then_failure_then_repair(self):
        """Updated parities must support later repairs."""
        system = make_system()
        system.put("a", payload(4000, seed=9))
        new = payload(4000, seed=10)
        system.overwrite("a", new)
        system.fail_node(1)
        system.repair()
        assert system.verify()
        np.testing.assert_array_equal(system.get("a"), new)


class TestParallelRepairReport:
    def test_parallel_at_most_serial(self):
        system = make_system()
        system.put("a", payload(8000))
        system.fail_node(0)
        report = system.repair()
        if report.blocks_repaired > 1:
            assert report.simulated_seconds <= report.simulated_serial_seconds + 1e-9
            assert report.simulated_seconds > 0

    def test_single_stripe_parallel_equals_serial(self):
        system = make_system()
        system.put("a", payload(100))  # one stripe
        victim = system._stripes[0].stored.placement.node_of(0)
        system.fail_node(victim)
        report = system.repair()
        assert report.blocks_repaired == 1
        assert report.simulated_seconds == pytest.approx(
            report.simulated_serial_seconds
        )
