"""Tests for sim↔live trace diffing (repro.telemetry.diff)."""

import math

import pytest

from repro.telemetry import (
    CLOCK_SIM,
    CLOCK_WALL,
    OP_CATEGORY,
    OpAlignment,
    Span,
    TelemetryTrace,
    diff_traces,
    render_diff,
)


def trace_of(clock, durations: dict[str, tuple[float, float]]) -> TelemetryTrace:
    """Trace with one op span per entry: op_id -> (start, end)."""
    return TelemetryTrace(
        clock=clock,
        spans=[
            Span(op_id, start, end, category=OP_CATEGORY, op_id=op_id,
                 attrs={"kind": "transfer"})
            for op_id, (start, end) in durations.items()
        ],
    )


class TestOpAlignment:
    def test_ratio_and_divergence(self):
        a = OpAlignment("x", "transfer", 2.0, 4.0, 0.0, 0.0)
        assert a.ratio == pytest.approx(2.0)
        assert a.divergence == pytest.approx(math.log(2.0))
        # Divergence is symmetric: half speed is as bad as double speed.
        b = OpAlignment("y", "transfer", 2.0, 1.0, 0.0, 0.0)
        assert b.divergence == pytest.approx(math.log(2.0))

    def test_zero_prediction_edge_cases(self):
        assert OpAlignment("x", "", 0.0, 0.5, 0.0, 0.0).ratio == float("inf")
        assert OpAlignment("x", "", 0.0, 0.0, 0.0, 0.0).ratio == pytest.approx(1.0)


class TestDiffTraces:
    def test_full_alignment(self):
        sim = trace_of(CLOCK_SIM, {"a": (0.0, 1.0), "b": (1.0, 3.0)})
        live = trace_of(CLOCK_WALL, {"a": (0.0, 1.1), "b": (1.1, 3.5)})
        diff = diff_traces(sim, live)
        assert diff.all_aligned
        assert [a.op_id for a in diff.aligned] == ["a", "b"]
        assert diff.aligned[0].ratio == pytest.approx(1.1)
        assert diff.predicted_makespan == pytest.approx(3.0)
        assert diff.measured_makespan == pytest.approx(3.5)
        assert diff.makespan_ratio == pytest.approx(3.5 / 3.0)

    def test_one_sided_ops_are_reported(self):
        sim = trace_of(CLOCK_SIM, {"a": (0.0, 1.0), "sim-extra": (0.0, 2.0)})
        live = trace_of(CLOCK_WALL, {"a": (0.0, 1.0), "live-extra": (0.0, 2.0)})
        diff = diff_traces(sim, live)
        assert not diff.all_aligned
        assert diff.sim_only == ("sim-extra",)
        assert diff.live_only == ("live-extra",)

    def test_worst_ranks_by_divergence(self):
        sim = trace_of(CLOCK_SIM, {"near": (0.0, 1.0), "slow": (0.0, 1.0),
                                   "fast": (0.0, 1.0)})
        live = trace_of(CLOCK_WALL, {"near": (0.0, 1.05), "slow": (0.0, 3.0),
                                     "fast": (0.0, 0.25)})
        worst = diff_traces(sim, live).worst(2)
        # 4x-fast beats 3x-slow beats 1.05x.
        assert [a.op_id for a in worst] == ["fast", "slow"]

    def test_critical_path_delta(self):
        sim = trace_of(CLOCK_SIM, {"a": (0.0, 1.0), "b": (1.0, 3.0)})
        live = trace_of(CLOCK_WALL, {"a": (0.0, 1.5), "b": (1.5, 4.0)})
        diff = diff_traces(sim, live, path_ops=("a", "b", "missing"))
        delta = diff.critical_path_delta()
        assert delta["path_predicted_s"] == pytest.approx(3.0)
        assert delta["path_measured_s"] == pytest.approx(4.0)
        assert delta["delta_s"] == pytest.approx(1.0)

    def test_to_dict_shape(self):
        sim = trace_of(CLOCK_SIM, {"a": (0.0, 1.0)})
        live = trace_of(CLOCK_WALL, {"a": (0.0, 2.0)})
        data = diff_traces(sim, live, path_ops=("a",)).to_dict()
        assert data["all_aligned"] is True
        assert data["aligned"][0]["ratio"] == pytest.approx(2.0)
        assert data["critical_path"]["ops"] == ["a"]


class TestRenderDiff:
    def test_mentions_alignment_and_worst_ops(self):
        sim = trace_of(CLOCK_SIM, {"a": (0.0, 1.0), "b": (0.0, 1.0)})
        live = trace_of(CLOCK_WALL, {"a": (0.0, 2.0), "c": (0.0, 1.0)})
        text = render_diff(diff_traces(sim, live), top=3)
        assert "1 aligned, 1 sim-only, 1 live-only" in text
        assert "sim-only: b" in text
        assert "live-only: c" in text
        assert "worst divergers" in text


class TestAcceptanceRS63:
    """The PR's acceptance scenario: RS(6,3), one failure, RPR over the
    memory transport — every op must align with a finite ratio."""

    @pytest.fixture(scope="class")
    def diff(self):
        from repro.live import run_live_validation

        report = run_live_validation(
            6, 3, [1], schemes=["rpr"], block_size=8 * 1024, telemetry=True
        )
        return report.rows[0].diff

    def test_every_op_aligned(self, diff):
        assert diff is not None
        assert diff.all_aligned
        assert len(diff.aligned) == 9  # the RS(6,3) RPR plan's op count

    def test_ratios_are_finite_and_positive(self, diff):
        for a in diff.aligned:
            assert 0.0 < a.ratio < float("inf")

    def test_critical_path_threaded_through(self, diff):
        assert diff.path_ops
        delta = diff.critical_path_delta()
        assert delta["path_predicted_s"] > 0
        assert delta["path_measured_s"] > 0

    def test_render_includes_every_section(self, diff):
        text = render_diff(diff)
        assert "aligned, 0 sim-only, 0 live-only" in text
        assert "critical path" in text
