"""Trace contexts, cross-process assembly, and crash-durable streaming."""

import json

from repro.telemetry import (
    CLOCK_WALL,
    PROC_ATTR,
    StreamingRecorder,
    TelemetryRecorder,
    TraceContext,
    assemble_files,
    assemble_trace,
    build_tree,
    critical_path,
    from_jsonl,
    new_span_id,
    render_critical_path,
    render_tree,
    to_chrome_trace,
    to_jsonl,
    trace_ids,
)
from repro.telemetry.distributed import (
    PARENT_ID_ATTR,
    SPAN_ID_ATTR,
    TRACE_ID_ATTR,
)


class TestTraceContext:
    def test_span_ids_are_random_64_bit_hex(self):
        ids = {new_span_id() for _ in range(256)}
        assert len(ids) == 256  # no collisions in a tiny sample
        for sid in ids:
            assert len(sid) == 16
            int(sid, 16)  # valid hex

    def test_root_and_child_lineage(self):
        root = TraceContext.root()
        child = root.child()
        grandchild = child.child()
        assert child.trace_id == root.trace_id == grandchild.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert len({root.span_id, child.span_id, grandchild.span_id}) == 3

    def test_wire_round_trip(self):
        ctx = TraceContext.root().child()
        back = TraceContext.from_wire(ctx.to_wire())
        assert back == ctx
        # A root has no parent — the wire form omits the key entirely.
        root = TraceContext.root()
        assert "p" not in root.to_wire()
        assert TraceContext.from_wire(root.to_wire()) == root
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({}) is None

    def test_attrs_link_spans(self):
        ctx = TraceContext.root().child()
        attrs = ctx.attrs()
        assert attrs[TRACE_ID_ATTR] == ctx.trace_id
        assert attrs[SPAN_ID_ATTR] == ctx.span_id
        assert attrs[PARENT_ID_ATTR] == ctx.parent_id


def _recorder(node: str, origin_unix: float) -> TelemetryRecorder:
    rec = TelemetryRecorder(CLOCK_WALL, meta={"node": node})
    rec.meta["origin_unix"] = origin_unix
    return rec


class TestAssembleTrace:
    def test_aligns_clocks_via_origin_unix(self):
        # Two processes whose local t=0 differ by 5 wall seconds: a span
        # at local t=1 in the later process lands at assembled t=6.
        early = _recorder("client", origin_unix=1000.0)
        late = _recorder("node-0", origin_unix=1005.0)
        early.span("put:x", 1.0, 2.0)
        late.span("rpc:block.put", 1.0, 1.5)
        merged = assemble_trace(
            [("client", early.trace()), ("node-0", late.trace())]
        )
        by_name = {s.name: s for s in merged.spans}
        assert by_name["put:x"].start == 1.0
        assert by_name["rpc:block.put"].start == 6.0
        assert by_name["rpc:block.put"].end == 6.5
        assert merged.meta["origin_unix"] == 1000.0
        assert merged.meta["sources"] == ["client", "node-0"]

    def test_namespaces_and_proc_attr(self):
        a = _recorder("a", 0.0)
        b = _recorder("b", 0.0)
        for rec in (a, b):
            rec.count("pacing.stalls", 2)
            rec.span("work", 0.0, 1.0, op_id="op1")
        merged = assemble_trace([("a", a.trace()), ("b", b.trace())])
        assert merged.counters == {"a/pacing.stalls": 2, "b/pacing.stalls": 2}
        assert sorted(s.op_id for s in merged.spans) == ["a/op1", "b/op1"]
        assert sorted(s.attrs[PROC_ATTR] for s in merged.spans) == ["a", "b"]

    def test_cross_process_tree_and_critical_path(self):
        # client -> coordinator -> two daemons; the tree must follow the
        # propagated span ids, and the critical path the slower daemon.
        root_ctx = TraceContext.root()
        hop = root_ctx.child()
        client = _recorder("client", 1000.0)
        client.span("get:obj", 0.0, 4.0, **root_ctx.attrs())
        coord = _recorder("coordinator", 1000.0)
        coord.span("rpc:object.lookup", 0.1, 3.9, **hop.attrs())
        fast, slow = hop.child(), hop.child()
        d0 = _recorder("node-0", 1000.0)
        d0.span("rpc:block.get", 0.2, 1.0, **fast.attrs())
        d1 = _recorder("node-1", 1000.0)
        d1.span("rpc:block.get", 0.2, 3.5, **slow.attrs())
        merged = assemble_trace(
            [
                ("client", client.trace()),
                ("coordinator", coord.trace()),
                ("node-0", d0.trace()),
                ("node-1", d1.trace()),
            ]
        )
        assert trace_ids(merged) == [root_ctx.trace_id]
        roots = build_tree(merged, root_ctx.trace_id)
        assert len(roots) == 1
        assert roots[0].span.name == "get:obj"
        assert roots[0].proc == "client"
        (lookup,) = roots[0].children
        assert {c.proc for c in lookup.children} == {"node-0", "node-1"}
        path = critical_path(roots[0])
        assert [n.proc for n in path] == ["client", "coordinator", "node-1"]
        rendered = render_tree(roots)
        assert "get:obj [client]" in rendered
        assert "└─" in rendered
        assert "node-1" in render_critical_path(path)

    def test_orphan_parent_becomes_root(self):
        # The parent process's stream is missing: its children must
        # still render, as roots, rather than vanish.
        missing_parent = TraceContext.root().child()
        rec = _recorder("node-0", 0.0)
        rec.span("rpc:block.get", 0.0, 1.0, **missing_parent.child().attrs())
        merged = assemble_trace([("node-0", rec.trace())])
        roots = build_tree(merged)
        assert len(roots) == 1
        assert roots[0].span.name == "rpc:block.get"

    def test_uninstrumented_spans_ignored_by_tree(self):
        rec = _recorder("a", 0.0)
        rec.span("legacy", 0.0, 1.0)  # no span_id attr
        rec.span("traced", 0.0, 1.0, **TraceContext.root().attrs())
        roots = build_tree(assemble_trace([("a", rec.trace())]))
        assert [r.span.name for r in roots] == ["traced"]

    def test_assembled_trace_round_trips_jsonl_and_perfetto(self):
        # The assembled trace is a plain TelemetryTrace: the existing
        # exporters must accept it unchanged (ISSUE satellite c).
        ctx = TraceContext.root()
        a = _recorder("client", 1000.0)
        a.span("put:x", 0.0, 1.0, **ctx.attrs())
        b = _recorder("node-0", 1001.0)
        b.span("rpc:block.put", 0.0, 0.5, **ctx.child().attrs())
        merged = assemble_trace([("client", a.trace()), ("node-0", b.trace())])
        clone = from_jsonl(to_jsonl(merged))
        assert to_jsonl(clone) == to_jsonl(merged)  # byte-identical
        assert len(build_tree(clone)) == 1
        chrome = to_chrome_trace([("assembled", merged)])
        names = {e["name"] for e in chrome["traceEvents"] if e["ph"] == "X"}
        assert {"put:x", "rpc:block.put"} <= names


class TestStreamingRecorder:
    def test_spans_survive_without_close(self, tmp_path):
        # The crash contract: records are on disk the moment they are
        # recorded, so a SIGKILL'd process still leaves its telemetry.
        path = tmp_path / "telemetry.jsonl"
        rec = StreamingRecorder(path, CLOCK_WALL, meta={"node": "node-0"})
        rec.span("rpc:block.put", 0.0, 0.25, nbytes=4096)
        rec.event("daemon.start")
        # No close(): read the file as a post-mortem would.
        trace = from_jsonl(path.read_text())
        assert [s.name for s in trace.spans] == ["rpc:block.put"]
        assert trace.spans[0].attrs["nbytes"] == 4096
        assert [e.name for e in trace.events] == ["daemon.start"]
        assert trace.meta["node"] == "node-0"
        rec.close()

    def test_metrics_flushed_on_close(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        rec = StreamingRecorder(path, CLOCK_WALL, metrics_interval_s=3600.0)
        rec.span("op", 0.0, 1.0)
        rec.count("repairs_done", 2)
        rec.gauge("nic_util", 0.5, at=0.5)
        rec.observe("latency", 0.01)
        rec.close()
        trace = from_jsonl(path.read_text())
        assert trace.counters["repairs_done"] == 2
        assert trace.gauges["nic_util"] == [(0.5, 0.5)]
        assert trace.histograms["latency"] == [0.01]

    def test_streamed_equals_in_memory_trace(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        rec = StreamingRecorder(path, CLOCK_WALL, meta={"node": "c"})
        ctx = TraceContext.root()
        rec.span("repair:r0", 1.0, 2.0, **ctx.attrs())
        rec.count("repairs_done")
        rec.close()
        assert to_jsonl(from_jsonl(path.read_text())) == to_jsonl(rec.trace())

    def test_reopen_after_rotation(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        rec = StreamingRecorder(path, CLOCK_WALL, meta={"node": "n"})
        rec.span("before", 0.0, 1.0)
        rotated = tmp_path / "telemetry.1.jsonl"
        path.rename(rotated)
        rec.reopen()
        rec.span("after", 1.0, 2.0)
        rec.close()
        assert [s.name for s in from_jsonl(rotated.read_text()).spans] == [
            "before"
        ]
        trace = from_jsonl(path.read_text())
        assert [s.name for s in trace.spans] == ["after"]
        assert trace.meta["node"] == "n"  # header re-emitted after reopen

    def test_line_buffered_writes_are_whole_records(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        rec = StreamingRecorder(path, CLOCK_WALL)
        for i in range(20):
            rec.span(f"op{i}", float(i), float(i) + 0.5)
        # Every line on disk parses on its own — no torn records.
        for line in path.read_text().splitlines():
            json.loads(line)
        rec.close()

    def test_assemble_files_names_by_meta_node(self, tmp_path):
        ctx = TraceContext.root()
        paths = []
        for node, hop in (("client", ctx), ("node-3", ctx.child())):
            p = tmp_path / f"telemetry-{node}.jsonl"
            rec = StreamingRecorder(p, CLOCK_WALL, meta={"node": node})
            rec.set_origin(0.0)
            rec.span(f"work:{node}", 10.0, 11.0, **hop.attrs())
            rec.close()
            paths.append(p)
        merged = assemble_files(paths)
        assert sorted(s.attrs[PROC_ATTR] for s in merged.spans) == [
            "client",
            "node-3",
        ]
        roots = build_tree(merged, ctx.trace_id)
        assert len(roots) == 1
        assert [c.proc for c in roots[0].children] == ["node-3"]
