"""Tests for the telemetry exporters (repro.telemetry.export)."""

import json

import pytest

from repro.experiments import build_simics_environment, run_scheme
from repro.repair import RPRScheme
from repro.telemetry import (
    CLOCK_SIM,
    OP_CATEGORY,
    Span,
    TelemetryEvent,
    TelemetryTrace,
    from_jsonl,
    to_chrome_trace,
    to_jsonl,
)


def small_trace() -> TelemetryTrace:
    return TelemetryTrace(
        clock=CLOCK_SIM,
        meta={"source": "sim", "scheme": "rpr"},
        spans=[
            Span("op-a", 0.0, 2.0, category=OP_CATEGORY, op_id="op-a",
                 attrs={"node": 3, "kind": "transfer", "cross_rack": True}),
            Span("op-a.port_wait", 0.0, 0.5, op_id="op-a", parent="op-a"),
        ],
        events=[TelemetryEvent("fault.death", 1.5, attrs={"node": 3})],
        counters={"bytes.cross_rack": 1024.0},
        gauges={"debt": [(0.5, 12.0), (1.0, 0.0)]},
        histograms={"stall_s": [0.01, 0.02]},
    )


class TestJsonl:
    def test_round_trip_is_byte_identical(self):
        """The archival contract: emit -> parse -> re-emit reproduces the
        stream exactly, so JSONL traces are safe to diff and hash."""
        text = to_jsonl(small_trace())
        assert to_jsonl(from_jsonl(text)) == text

    def test_round_trip_on_a_real_repair(self):
        env = build_simics_environment(6, 3)
        trace = run_scheme(env, RPRScheme(), [1]).telemetry()
        text = to_jsonl(trace)
        rebuilt = from_jsonl(text)
        assert to_jsonl(rebuilt) == text
        assert rebuilt.op_spans().keys() == trace.op_spans().keys()
        assert rebuilt.counters == trace.counters

    def test_header_first_then_fixed_record_order(self):
        lines = to_jsonl(small_trace()).splitlines()
        kinds = [json.loads(line)["record"] for line in lines]
        assert kinds[0] == "telemetry"
        assert kinds == sorted(
            kinds,
            key=["telemetry", "span", "event", "counter", "gauge", "histogram"].index,
        )

    def test_parse_restores_values(self):
        rebuilt = from_jsonl(to_jsonl(small_trace()))
        assert rebuilt.clock == CLOCK_SIM
        assert rebuilt.meta == {"source": "sim", "scheme": "rpr"}
        assert rebuilt.spans[0].attrs["cross_rack"] is True
        assert rebuilt.gauges["debt"] == [(0.5, 12.0), (1.0, 0.0)]
        assert rebuilt.histograms["stall_s"] == [0.01, 0.02]

    def test_missing_header_raises(self):
        body_only = "\n".join(to_jsonl(small_trace()).splitlines()[1:]) + "\n"
        with pytest.raises(ValueError, match="no header"):
            from_jsonl(body_only)

    def test_unknown_record_kind_raises(self):
        text = to_jsonl(small_trace()) + '{"record":"mystery"}\n'
        with pytest.raises(ValueError, match="unknown telemetry record"):
            from_jsonl(text)

    def test_blank_lines_ignored(self):
        text = to_jsonl(small_trace()).replace("\n", "\n\n")
        assert to_jsonl(from_jsonl(text)) == to_jsonl(small_trace())


class TestChromeTrace:
    def test_structure(self):
        doc = to_chrome_trace([("sim", small_trace())])
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i", "C"}
        # One process, named with its clock source.
        process = next(e for e in events if e["name"] == "process_name")
        assert process["args"]["name"] == "sim (sim)"
        # Node 3 lands on thread 4; run-level rows on thread 0.
        threads = {e["tid"]: e["args"]["name"]
                   for e in events if e["name"] == "thread_name"}
        assert threads[4] == "n3"

    def test_span_timestamps_are_microseconds(self):
        events = to_chrome_trace([("sim", small_trace())])["traceEvents"]
        op = next(e for e in events if e["ph"] == "X" and e["name"] == "op-a")
        assert op["ts"] == pytest.approx(0.0)
        assert op["dur"] == pytest.approx(2e6)
        assert op["args"]["op_id"] == "op-a"
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["ts"] == pytest.approx(1.5e6)
        assert instant["s"] == "p"

    def test_multiple_traces_become_processes(self):
        doc = to_chrome_trace([("sim", small_trace()), ("live", small_trace())])
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2}

    def test_document_is_json_serializable(self):
        doc = to_chrome_trace([("sim", small_trace())])
        assert json.loads(json.dumps(doc)) == doc
