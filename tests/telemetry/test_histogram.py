"""Log-bucketed histograms, the stats registry, and the Prometheus path."""

import math

import pytest

from repro.telemetry import (
    LogHistogram,
    StatsRegistry,
    snapshots_to_prometheus,
    validate_prometheus_text,
)


class TestLogHistogram:
    def test_bucket_bounds_cover_observation(self):
        hist = LogHistogram()
        for value in (1e-7, 1e-6, 3e-4, 0.02, 1.5, 900.0):
            hist.observe(value)
            idx = hist.bucket_index(value)
            upper = hist.origin * hist.base**idx
            lower = hist.origin * hist.base ** (idx - 1)
            assert value <= upper * (1 + 1e-9)
            assert value > lower * (1 - 1e-9) or idx == hist.bucket_index(
                hist.origin
            )
        assert hist.count == 6

    def test_quantile_is_upper_bound(self):
        hist = LogHistogram()
        values = [0.001, 0.002, 0.004, 0.008, 0.1]
        for v in values:
            hist.observe(v)
        # The p100 estimate must bound the true max; p50 must bound the
        # true median.  Bucket width caps the overestimate at one base.
        assert hist.quantile(1.0) >= max(values)
        assert hist.quantile(1.0) <= max(values) * hist.base
        assert hist.quantile(0.5) >= 0.004
        assert LogHistogram().quantile(0.5) == 0.0

    def test_mean_and_merge(self):
        a, b = LogHistogram(), LogHistogram()
        for v in (0.01, 0.02):
            a.observe(v)
        for v in (0.04, 0.08, 0.16):
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert a.mean == pytest.approx((0.01 + 0.02 + 0.04 + 0.08 + 0.16) / 5)
        assert sum(n for _, n in a.cumulative())  # cumulative is populated

    def test_cumulative_is_monotonic(self):
        hist = LogHistogram()
        for i in range(50):
            hist.observe(0.001 * (1 + i % 7))
        cum = hist.cumulative()
        uppers = [u for u, _ in cum]
        counts = [c for _, c in cum]
        assert uppers == sorted(uppers)
        assert counts == sorted(counts)
        assert counts[-1] == hist.count

    def test_dict_round_trip(self):
        hist = LogHistogram()
        for v in (1e-5, 0.3, 0.3, 12.0):
            hist.observe(v)
        clone = LogHistogram.from_dict(hist.to_dict())
        assert clone.count == hist.count
        assert clone.sum == pytest.approx(hist.sum)
        assert clone.buckets == hist.buckets
        assert clone.to_dict() == hist.to_dict()


class TestStatsRegistry:
    def test_snapshot_shape(self):
        ticks = iter([0.0, 10.0])
        reg = StatsRegistry("node-7", clock=lambda: next(ticks))
        reg.count("rpc:block.get")
        reg.count("rpc:block.get")
        reg.gauge("blocks", 4.0)
        reg.latency("block.get", 0.002, cls="foreground")
        snap = reg.snapshot()
        assert snap["node"] == "node-7"
        assert snap["uptime_s"] == pytest.approx(10.0)
        assert snap["counters"]["rpc:block.get"] == 2
        assert snap["gauges"]["blocks"] == 4.0
        hist = LogHistogram.from_dict(
            snap["histograms"]["latency_s:block.get:foreground"]
        )
        assert hist.count == 1

    def test_prometheus_render_passes_validator(self):
        reg = StatsRegistry("coordinator")
        reg.count("repairs_done", 3)
        reg.gauge("degraded_stripes", 1.0)
        for v in (0.001, 0.004, 0.4):
            reg.latency("repair.stripe", v)
            reg.latency("block.get", v / 2, cls="foreground")
        text = snapshots_to_prometheus([reg.snapshot()])
        assert validate_prometheus_text(text) == []
        assert 'rpr_events_total{name="repairs_done",node="coordinator"} 3' in text
        assert "rpr_latency_seconds_bucket" in text
        assert 'le="+Inf"' in text
        assert 'class="foreground"' in text

    @pytest.mark.parametrize(
        "text, problem",
        [
            ("rpr_events_total{node=\"a\"} 1\n", "TYPE"),
            (
                "# TYPE rpr_events counter\nrpr_events{node=\"a\"} 1\n",
                "_total",
            ),
            (
                "# TYPE rpr_x_seconds histogram\n"
                'rpr_x_seconds_bucket{le="0.1"} 5\n'
                'rpr_x_seconds_bucket{le="0.2"} 3\n'
                'rpr_x_seconds_bucket{le="+Inf"} 5\n'
                "rpr_x_seconds_sum 1\n"
                "rpr_x_seconds_count 5\n",
                "monoton",
            ),
            (
                "# TYPE rpr_x_seconds histogram\n"
                'rpr_x_seconds_bucket{le="0.1"} 5\n'
                "rpr_x_seconds_sum 1\n"
                "rpr_x_seconds_count 5\n",
                "+Inf",
            ),
            ("rpr_bad{node='a'} 1\n", ""),
        ],
    )
    def test_validator_rejects_malformed(self, text, problem):
        errors = validate_prometheus_text(text)
        assert errors, f"expected problems in {text!r}"
        if problem:
            assert any(problem in e for e in errors), errors

    def test_histogram_quantile_error_bounded_by_base(self):
        # The documented accuracy contract: quantile() overestimates by
        # at most a factor of `base` (one geometric bucket).
        hist = LogHistogram()
        true_values = [0.001 * math.exp(i / 10) for i in range(100)]
        for v in true_values:
            hist.observe(v)
        for q in (0.5, 0.9, 0.99):
            true_q = sorted(true_values)[int(q * len(true_values)) - 1]
            assert true_q <= hist.quantile(q) <= true_q * hist.base * 1.01
