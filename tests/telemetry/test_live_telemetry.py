"""Live-runtime telemetry: recorded spans, pacing metrics, and the
zero-cost disabled path."""

import asyncio

import pytest

from repro.experiments import build_simics_environment, context_for
from repro.live import TokenBucket, run_plan_live_sync
from repro.repair import RPRScheme, initial_store_for
from repro.telemetry import (
    CLOCK_WALL,
    NULL_RECORDER,
    OP_CATEGORY,
    TelemetryRecorder,
    TelemetryTrace,
)
from repro.workloads import encoded_stripe

BLOCK = 4 * 1024

SEND_PHASES = {
    "send.dep_wait", "send.port_wait", "send.latency",
    "send.connect", "send.stream", "send.ack_wait",
}
COMBINE_PHASES = {"combine.dep_wait", "combine.cpu_wait"}


def scenario(n=6, k=3, failed=(1,)):
    env = build_simics_environment(n, k, block_size=BLOCK)
    plan = RPRScheme().plan(context_for(env, list(failed)))
    stripe = encoded_stripe(env.code, BLOCK, seed=7)
    store = initial_store_for(stripe, env.placement, list(failed))
    return plan, env, store


def run(plan, env, store, *, bandwidth=None, recorder=None):
    return run_plan_live_sync(
        plan, env.cluster, store, bandwidth=bandwidth, recorder=recorder
    )


class TestRecordedRun:
    @pytest.fixture(scope="class")
    def result(self):
        plan, env, store = scenario()
        rec = TelemetryRecorder(CLOCK_WALL, meta={"source": "live"})
        return plan, run(plan, env, store, recorder=rec)

    def test_telemetry_attached(self, result):
        _, live = result
        assert isinstance(live.telemetry, TelemetryTrace)
        assert live.telemetry.clock == CLOCK_WALL
        assert live.telemetry.meta["source"] == "live"

    def test_one_op_span_per_plan_op(self, result):
        plan, live = result
        assert live.telemetry.op_spans().keys() == set(plan.ops)

    def test_op_spans_carry_identity_attrs(self, result):
        plan, live = result
        for op_id, span in live.telemetry.op_spans().items():
            assert span.category == OP_CATEGORY
            assert span.attrs["kind"] in ("transfer", "compute")
            assert span.end >= span.start >= 0.0
            assert span.end <= live.telemetry.extent

    def test_phase_spans_nest_under_their_op(self, result):
        plan, live = result
        phases = [s for s in live.telemetry.spans if s.parent]
        assert phases, "expected nested phase spans"
        op_ids = set(plan.ops)
        for phase in phases:
            assert phase.parent in op_ids
            assert phase.op_id == phase.parent
            assert phase.name in SEND_PHASES | COMBINE_PHASES

    def test_every_send_has_all_phases(self, result):
        plan, live = result
        sends = [oid for oid, span in live.telemetry.op_spans().items()
                 if span.attrs["kind"] == "transfer"]
        for oid in sends:
            names = {s.name for s in live.telemetry.spans
                     if s.parent == oid and not s.category}
            assert names == SEND_PHASES

    def test_counters_match_the_ledgers(self, result):
        _, live = result
        counters = live.telemetry.counters
        assert counters["bytes.cross_rack"] == pytest.approx(live.cross_rack_bytes)
        assert counters["bytes.intra_rack"] == pytest.approx(live.intra_rack_bytes)
        assert counters["ops.sends"] + counters["ops.combines"] == len(live.timings)

    def test_op_spans_agree_with_measured_timings(self, result):
        _, live = result
        for op_id, timing in live.timings.items():
            span = live.telemetry.op_spans()[op_id]
            assert span.start == pytest.approx(timing.start)
            assert span.end == pytest.approx(timing.end)


class TestDisabledPath:
    def test_no_recorder_means_no_telemetry(self):
        plan, env, store = scenario()
        live = run(plan, env, store)
        assert live.telemetry is None
        assert live.recovered  # the run itself still works

    def test_null_recorder_collapses_to_disabled(self):
        plan, env, store = scenario()
        live = run(plan, env, store, recorder=NULL_RECORDER)
        assert live.telemetry is None


class TestShapedRunPacing:
    def test_shaped_run_records_pacing_and_throughput(self):
        plan, env, store = scenario()
        rec = TelemetryRecorder(CLOCK_WALL)
        live = run(plan, env, store, bandwidth=env.bandwidth, recorder=rec)
        tel = live.telemetry
        # Buckets start empty, so every shaped transfer stalls at least once.
        assert tel.counters["pacing.stalls"] >= 1
        assert tel.histograms["pacing.stall_s"]
        assert any(name.startswith("bucket.debt_bytes:") for name in tel.gauges)
        assert any(name.startswith("throughput.") for name in tel.gauges)
        assert tel.counters["chunks.sent"] >= tel.counters["ops.sends"]


class TestTokenBucketEmission:
    def test_stall_is_counted_and_measured(self):
        sleeps = []

        async def fake_sleep(s):
            sleeps.append(s)

        rec = TelemetryRecorder(CLOCK_WALL, time_source=lambda: 0.0)
        bucket = TokenBucket(
            1000.0, clock=lambda: 0.0, sleep=fake_sleep,
            recorder=rec, label="n0->n1",
        )
        asyncio.run(bucket.acquire(500))
        trace = rec.trace()
        assert trace.counters["pacing.stalls"] == pytest.approx(1.0)
        assert trace.histograms["pacing.stall_s"] == [pytest.approx(0.5)]
        assert trace.gauges["bucket.debt_bytes:n0->n1"][0][1] == pytest.approx(500.0)
        assert sleeps == [pytest.approx(0.5)]

    def test_disabled_bucket_emits_nothing_but_still_paces(self):
        sleeps = []

        async def fake_sleep(s):
            sleeps.append(s)

        bucket = TokenBucket(
            1000.0, clock=lambda: 0.0, sleep=fake_sleep, recorder=NULL_RECORDER
        )
        assert bucket._recorder is None  # the guard collapsed the falsy recorder
        asyncio.run(bucket.acquire(500))
        assert sleeps == [pytest.approx(0.5)]
