"""Tests for the unified span/event model (repro.telemetry.model)."""

import pytest

from repro.telemetry import (
    CLOCK_SIM,
    CLOCK_WALL,
    NULL_RECORDER,
    NullRecorder,
    OP_CATEGORY,
    Span,
    TelemetryEvent,
    TelemetryRecorder,
    TelemetryTrace,
)


class TestSpan:
    def test_duration(self):
        assert Span("x", 1.0, 3.5).duration == pytest.approx(2.5)

    def test_dict_round_trip(self):
        span = Span(
            "op", 0.0, 1.0, category=OP_CATEGORY, op_id="a", parent="",
            attrs={"node": 3, "cross_rack": True},
        )
        assert Span.from_dict(span.to_dict()) == span


class TestRecorder:
    def test_clock_validation(self):
        with pytest.raises(ValueError, match="unknown clock"):
            TelemetryRecorder("cpu")
        with pytest.raises(ValueError, match="unknown clock"):
            TelemetryTrace(clock="cpu")

    def test_origin_subtraction(self):
        rec = TelemetryRecorder(CLOCK_WALL, time_source=lambda: 100.0)
        rec.set_origin(100.0)
        rec.span("op", 100.5, 101.5, category=OP_CATEGORY, op_id="a", node=2)
        rec.event("death", at=100.25, node=2)
        rec.gauge("debt", 42.0, at=100.75)
        trace = rec.trace()
        assert trace.spans[0].start == pytest.approx(0.5)
        assert trace.spans[0].end == pytest.approx(1.5)
        assert trace.spans[0].attrs == {"node": 2}
        assert trace.events[0].time == pytest.approx(0.25)
        assert trace.gauges["debt"] == [(pytest.approx(0.75), 42.0)]

    def test_now_uses_time_source(self):
        ticks = iter([10.0, 10.5])
        rec = TelemetryRecorder(CLOCK_WALL, time_source=lambda: next(ticks))
        rec.set_origin(10.0)
        assert rec.now() == pytest.approx(0.0)
        assert rec.now() == pytest.approx(0.5)

    def test_counters_and_histograms(self):
        rec = TelemetryRecorder(CLOCK_SIM)
        rec.count("stalls")
        rec.count("stalls", 2.0)
        rec.observe("wait_s", 0.1)
        rec.observe("wait_s", 0.3)
        trace = rec.trace()
        assert trace.counters["stalls"] == pytest.approx(3.0)
        assert trace.histograms["wait_s"] == [0.1, 0.3]

    def test_trace_is_a_snapshot(self):
        rec = TelemetryRecorder(CLOCK_SIM)
        rec.count("n")
        first = rec.trace()
        rec.count("n")
        assert first.counters["n"] == pytest.approx(1.0)
        assert rec.trace().counters["n"] == pytest.approx(2.0)


class TestNullRecorder:
    """The zero-cost-when-disabled contract."""

    def test_falsy_and_disabled(self):
        assert not NULL_RECORDER
        assert NULL_RECORDER.enabled is False
        assert TelemetryRecorder(CLOCK_WALL).enabled is True
        assert bool(TelemetryRecorder(CLOCK_WALL))

    def test_guard_idiom_collapses_to_none(self):
        # Every instrumented constructor stores
        # ``recorder if recorder else None`` — both "off" spellings must
        # collapse to the same fast path.
        for off in (None, NULL_RECORDER, NullRecorder()):
            assert (off if off else None) is None

    def test_emissions_record_nothing(self):
        rec = NullRecorder()
        rec.span("x", 0.0, 1.0, op_id="a")
        rec.event("x")
        rec.count("x")
        rec.gauge("x", 1.0)
        rec.observe("x", 1.0)
        trace = rec.trace()
        assert not trace.spans and not trace.events
        assert not trace.counters and not trace.gauges and not trace.histograms


class TestTrace:
    def build(self):
        return TelemetryTrace(
            clock=CLOCK_SIM,
            meta={"source": "sim"},
            spans=[
                Span("a", 0.0, 2.0, category=OP_CATEGORY, op_id="a"),
                Span("a.phase", 0.0, 1.0, op_id="a", parent="a"),
            ],
            events=[TelemetryEvent("death", 3.0)],
            counters={"bytes": 10.0},
            gauges={"debt": [(0.5, 4.0)]},
            histograms={"wait": [0.1]},
        )

    def test_extent_covers_spans_and_events(self):
        assert self.build().extent == pytest.approx(3.0)
        assert TelemetryTrace(clock=CLOCK_SIM).extent == 0.0

    def test_op_spans_filters_by_category(self):
        ops = self.build().op_spans()
        assert set(ops) == {"a"}
        assert ops["a"].name == "a"

    def test_shifted(self):
        shifted = self.build().shifted(10.0)
        assert shifted.spans[0].start == pytest.approx(10.0)
        assert shifted.events[0].time == pytest.approx(13.0)
        assert shifted.gauges["debt"][0][0] == pytest.approx(10.5)
        # Counters and histogram values are time-free and unchanged.
        assert shifted.counters == {"bytes": 10.0}
        assert shifted.histograms == {"wait": [0.1]}

    def test_merged_accumulates(self):
        one, two = self.build(), self.build().shifted(5.0)
        merged = one.merged(two)
        assert len(merged.spans) == 4
        assert merged.counters["bytes"] == pytest.approx(20.0)
        assert len(merged.gauges["debt"]) == 2
        assert merged.histograms["wait"] == [0.1, 0.1]
        # Inputs are untouched.
        assert one.counters["bytes"] == pytest.approx(10.0)

    def test_merged_refuses_clock_mismatch(self):
        wall = TelemetryTrace(clock=CLOCK_WALL)
        with pytest.raises(ValueError, match="clock"):
            self.build().merged(wall)

    def test_dict_round_trip(self):
        trace = self.build()
        rebuilt = TelemetryTrace.from_dict(trace.to_dict())
        assert rebuilt.to_dict() == trace.to_dict()
        assert rebuilt.spans == trace.spans
        assert rebuilt.gauges == trace.gauges
