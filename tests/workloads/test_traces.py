"""Tests for the seeded trace generators (failures and user requests)."""

import collections

import pytest

from repro.cluster import Cluster
from repro.workloads import (
    DAY,
    YEAR,
    FailureEvent,
    RequestEvent,
    poisson_node_failures,
    zipf_object_trace,
    zipf_weights,
)


@pytest.fixture
def cluster():
    return Cluster.homogeneous(4, 5)


class TestPoissonTrace:
    def test_deterministic(self, cluster):
        a = list(poisson_node_failures(cluster, YEAR, YEAR, seed=3))
        b = list(poisson_node_failures(cluster, YEAR, YEAR, seed=3))
        assert a == b

    def test_seed_changes_trace(self, cluster):
        a = list(poisson_node_failures(cluster, YEAR, YEAR, seed=1))
        b = list(poisson_node_failures(cluster, YEAR, YEAR, seed=2))
        assert a != b

    def test_time_ordered_within_horizon(self, cluster):
        events = list(poisson_node_failures(cluster, YEAR, YEAR, seed=4))
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 < t <= YEAR for t in times)
        assert all(e.node_id in cluster.node_ids() for e in events)

    def test_rate_roughly_matches(self, cluster):
        """20 nodes at MTBF 1y over 10y ≈ 200 failures (±30%)."""
        events = list(poisson_node_failures(cluster, YEAR, 10 * YEAR, seed=5))
        assert 140 < len(events) < 260

    def test_no_repeat_mode(self, cluster):
        events = list(
            poisson_node_failures(
                cluster, 30 * DAY, 100 * YEAR, seed=6, allow_repeat=False
            )
        )
        nodes = [e.node_id for e in events]
        assert len(nodes) == len(set(nodes))
        assert len(nodes) <= cluster.num_nodes

    def test_repeat_mode_can_refail(self, cluster):
        events = list(
            poisson_node_failures(cluster, 10 * DAY, 5 * YEAR, seed=7)
        )
        nodes = [e.node_id for e in events]
        assert len(nodes) > len(set(nodes))

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            list(poisson_node_failures(cluster, 0, YEAR))
        with pytest.raises(ValueError):
            list(poisson_node_failures(cluster, YEAR, -1))

    def test_event_is_frozen(self):
        event = FailureEvent(time=1.0, node_id=2)
        with pytest.raises(AttributeError):
            event.time = 5.0

    def test_no_repeat_mode_exhausts_every_node_then_stops(self, cluster):
        """MTBF ≪ horizon: each node fails exactly once, generator ends."""
        events = list(
            poisson_node_failures(
                cluster, DAY, 1000 * YEAR, seed=8, allow_repeat=False
            )
        )
        assert sorted(e.node_id for e in events) == cluster.node_ids()

    def test_horizon_boundary_is_exclusive(self, cluster):
        """A failure drawn past the horizon is dropped, not clamped onto it."""
        for seed in range(20):
            events = list(
                poisson_node_failures(cluster, YEAR, 30 * DAY, seed=seed)
            )
            assert all(e.time <= 30 * DAY for e in events)
        # The aggregate stream keeps flowing right up to the boundary:
        # over many seeds the last arrival lands in the final tenth.
        lasts = [
            events[-1].time
            for s in range(20)
            if (events := list(poisson_node_failures(cluster, YEAR, 30 * DAY, seed=s)))
        ]
        assert max(lasts) > 0.9 * 30 * DAY


class TestZipfWeights:
    def test_normalised_and_monotone(self):
        weights = zipf_weights(50, 1.0)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_s_zero_is_uniform(self):
        assert zipf_weights(4, 0.0) == pytest.approx([0.25] * 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -0.5)


class TestZipfObjectTrace:
    def test_deterministic_per_seed(self):
        a = zipf_object_trace(20, 500, seed=3)
        b = zipf_object_trace(20, 500, seed=3)
        c = zipf_object_trace(20, 500, seed=4)
        assert a == b
        assert a != c
        assert len(a) == 500

    def test_arrivals_are_time_ordered_at_roughly_the_rate(self):
        events = zipf_object_trace(10, 2000, rate=100.0, seed=5)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(t > 0 for t in times)
        # 2000 arrivals at 100/s span ~20s (±30%).
        assert 14.0 < times[-1] < 26.0

    def test_get_fraction_bounds(self):
        all_gets = zipf_object_trace(5, 200, get_fraction=1.0, seed=6)
        assert all(e.op == "get" for e in all_gets)
        all_puts = zipf_object_trace(5, 200, get_fraction=0.0, seed=6)
        assert all(e.op == "put" for e in all_puts)

    def test_gets_target_the_preloaded_set_and_puts_are_fresh(self):
        events = zipf_object_trace(8, 400, get_fraction=0.5, seed=7)
        preloaded = {f"obj-{rank}" for rank in range(8)}
        gets = [e for e in events if e.op == "get"]
        puts = [e for e in events if e.op == "put"]
        assert {e.obj for e in gets} <= preloaded
        # PUT names are versioned and never collide (no-overwrite store).
        assert len({e.obj for e in puts}) == len(puts)
        assert all(e.obj.startswith("obj-put-") for e in puts)

    def test_popularity_is_head_heavy(self):
        """Rank 0 is the hottest object by a wide margin at s=1."""
        events = zipf_object_trace(20, 5000, get_fraction=1.0, zipf_s=1.0, seed=8)
        counts = collections.Counter(e.obj for e in events)
        ranked = counts.most_common()
        assert ranked[0][0] == "obj-0"
        # Zipf(1) over 20 ranks gives the head ~28% of the traffic.
        assert ranked[0][1] > 3 * counts["obj-10"]

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_object_trace(5, -1)
        with pytest.raises(ValueError):
            zipf_object_trace(5, 10, rate=0.0)
        with pytest.raises(ValueError):
            zipf_object_trace(5, 10, get_fraction=1.5)

    def test_event_is_frozen(self):
        event = RequestEvent(time=0.5, op="get", obj="obj-0")
        with pytest.raises(AttributeError):
            event.op = "put"
