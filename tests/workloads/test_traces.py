"""Tests for the Poisson failure-trace generator."""

import pytest

from repro.cluster import Cluster
from repro.workloads import DAY, YEAR, FailureEvent, poisson_node_failures


@pytest.fixture
def cluster():
    return Cluster.homogeneous(4, 5)


class TestPoissonTrace:
    def test_deterministic(self, cluster):
        a = list(poisson_node_failures(cluster, YEAR, YEAR, seed=3))
        b = list(poisson_node_failures(cluster, YEAR, YEAR, seed=3))
        assert a == b

    def test_seed_changes_trace(self, cluster):
        a = list(poisson_node_failures(cluster, YEAR, YEAR, seed=1))
        b = list(poisson_node_failures(cluster, YEAR, YEAR, seed=2))
        assert a != b

    def test_time_ordered_within_horizon(self, cluster):
        events = list(poisson_node_failures(cluster, YEAR, YEAR, seed=4))
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 < t <= YEAR for t in times)
        assert all(e.node_id in cluster.node_ids() for e in events)

    def test_rate_roughly_matches(self, cluster):
        """20 nodes at MTBF 1y over 10y ≈ 200 failures (±30%)."""
        events = list(poisson_node_failures(cluster, YEAR, 10 * YEAR, seed=5))
        assert 140 < len(events) < 260

    def test_no_repeat_mode(self, cluster):
        events = list(
            poisson_node_failures(
                cluster, 30 * DAY, 100 * YEAR, seed=6, allow_repeat=False
            )
        )
        nodes = [e.node_id for e in events]
        assert len(nodes) == len(set(nodes))
        assert len(nodes) <= cluster.num_nodes

    def test_repeat_mode_can_refail(self, cluster):
        events = list(
            poisson_node_failures(cluster, 10 * DAY, 5 * YEAR, seed=7)
        )
        nodes = [e.node_id for e in events]
        assert len(nodes) > len(set(nodes))

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            list(poisson_node_failures(cluster, 0, YEAR))
        with pytest.raises(ValueError):
            list(poisson_node_failures(cluster, YEAR, -1))

    def test_event_is_frozen(self):
        event = FailureEvent(time=1.0, node_id=2)
        with pytest.raises(AttributeError):
            event.time = 5.0
