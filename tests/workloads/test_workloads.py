"""Tests for failure-scenario and payload generators."""

import itertools
import math

import numpy as np
import pytest

from repro.rs import get_code
from repro.workloads import (
    FailureScenario,
    encoded_stripe,
    encoded_stripes,
    multi_failure_scenarios,
    patterned_blocks,
    random_blocks,
    sample_scenarios,
    scenario_count,
    single_failure_scenarios,
    validate_scenario,
    worst_case_scenarios,
)


class TestFailureScenario:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureScenario(())
        with pytest.raises(ValueError):
            FailureScenario((2, 1))
        with pytest.raises(ValueError):
            FailureScenario((1, 1))

    def test_size(self):
        assert FailureScenario((0, 3)).size == 2

    def test_validate_against_code(self):
        code = get_code(4, 2)
        scenario = FailureScenario((0, 5))
        assert validate_scenario(code, scenario) is scenario

    def test_validate_rejects_out_of_range(self):
        # Regression: out-of-range block ids used to surface only deep
        # inside decode; now they fail at the generator boundary.
        code = get_code(4, 2)
        with pytest.raises(ValueError, match="outside the RS"):
            validate_scenario(code, FailureScenario((6,)))
        with pytest.raises(ValueError, match="outside the RS"):
            validate_scenario(code, FailureScenario((-1, 2)))

    def test_validate_rejects_too_many_failures(self):
        code = get_code(4, 2)
        with pytest.raises(ValueError, match="tolerates at most"):
            validate_scenario(code, FailureScenario((0, 1, 2)))


class TestSingle:
    def test_full_width_default(self):
        # All generators share the data_only=False default: failures range
        # over data AND parity blocks unless the caller opts into the
        # paper's data-only sweeps.
        code = get_code(4, 2)
        scenarios = single_failure_scenarios(code)
        assert [s.failed_blocks for s in scenarios] == [
            (0,), (1,), (2,), (3,), (4,), (5,)
        ]

    def test_data_only(self):
        code = get_code(4, 2)
        scenarios = single_failure_scenarios(code, data_only=True)
        assert [s.failed_blocks for s in scenarios] == [(0,), (1,), (2,), (3,)]


class TestMulti:
    def test_exhaustive_count(self):
        code = get_code(8, 4)
        scenarios = multi_failure_scenarios(code, 2)
        assert len(scenarios) == math.comb(12, 2)
        assert len(set(s.failed_blocks for s in scenarios)) == len(scenarios)

    def test_scenario_count_matches(self):
        code = get_code(8, 4)
        assert scenario_count(code, 3) == math.comb(12, 3)
        assert scenario_count(code, 3, data_only=True) == math.comb(8, 3)

    def test_too_many_failures_rejected(self):
        with pytest.raises(ValueError):
            multi_failure_scenarios(get_code(4, 2), 3)

    def test_worst_case_is_k(self):
        code = get_code(6, 2)
        scenarios = worst_case_scenarios(code)
        assert all(s.size == 2 for s in scenarios)
        assert len(scenarios) == math.comb(8, 2)

    def test_all_scenarios_within_width(self):
        code = get_code(6, 3)
        for s in multi_failure_scenarios(code, 3):
            assert all(0 <= b < code.width for b in s.failed_blocks)


class TestSampling:
    def test_deterministic(self):
        code = get_code(12, 4)
        a = list(sample_scenarios(code, 3, 20, seed=7))
        b = list(sample_scenarios(code, 3, 20, seed=7))
        assert a == b

    def test_different_seeds_differ(self):
        code = get_code(12, 4)
        a = list(sample_scenarios(code, 3, 20, seed=1))
        b = list(sample_scenarios(code, 3, 20, seed=2))
        assert a != b

    def test_sizes_valid(self):
        code = get_code(8, 4)
        for s in sample_scenarios(code, 4, 10):
            assert s.size == 4

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            list(sample_scenarios(get_code(4, 2), 1, 0))

    def test_unique_no_duplicates(self):
        code = get_code(4, 2)  # only comb(6, 2) = 15 scenarios
        scenarios = list(sample_scenarios(code, 2, 12, seed=3, unique=True))
        assert len(scenarios) == 12
        assert len({s.failed_blocks for s in scenarios}) == 12

    def test_unique_falls_back_to_enumeration(self):
        # Asking for at least the whole space enumerates it exactly once.
        code = get_code(4, 2)
        scenarios = list(sample_scenarios(code, 2, 100, seed=0, unique=True))
        assert len(scenarios) == math.comb(6, 2)
        assert {s.failed_blocks for s in scenarios} == set(
            itertools.combinations(range(6), 2)
        )

    def test_unique_deterministic(self):
        code = get_code(8, 3)
        a = list(sample_scenarios(code, 2, 10, seed=5, unique=True))
        b = list(sample_scenarios(code, 2, 10, seed=5, unique=True))
        assert a == b


class TestDataGen:
    def test_random_blocks_shape_and_determinism(self):
        a = random_blocks(3, 64, seed=5)
        b = random_blocks(3, 64, seed=5)
        assert len(a) == 3
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
            assert x.dtype == np.uint8 and x.shape == (64,)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            random_blocks(0, 10)
        with pytest.raises(ValueError):
            patterned_blocks(1, 0)

    def test_text_pattern_ascii(self):
        [block] = patterned_blocks(1, 256, pattern="text")
        assert block.min() >= 32 and block.max() < 127

    def test_zeros_pattern_sparse(self):
        [block] = patterned_blocks(1, 1024, pattern="zeros")
        assert (block == 0).sum() > 900

    def test_ramp_deterministic(self):
        a = patterned_blocks(2, 64, pattern="ramp")
        b = patterned_blocks(2, 64, pattern="ramp")
        np.testing.assert_array_equal(a[1], b[1])

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            patterned_blocks(1, 8, pattern="nope")

    def test_encoded_stripe_valid(self):
        code = get_code(6, 3)
        stripe = encoded_stripe(code, 128, seed=3)
        assert code.verify_stripe(stripe)

    def test_encoded_stripe_with_pattern(self):
        code = get_code(4, 2)
        stripe = encoded_stripe(code, 64, pattern="zeros")
        assert code.verify_stripe(stripe)

    def test_encoded_stripes_match_singles(self):
        code = get_code(6, 2)
        many = encoded_stripes(code, 4, 96, seed=7)
        for s, stripe in enumerate(many):
            assert code.verify_stripe(stripe)
            single = encoded_stripe(code, 96, seed=7 + s)
            for bid in range(code.width):
                np.testing.assert_array_equal(
                    stripe.get_payload(bid), single.get_payload(bid)
                )

    def test_encoded_stripes_pattern_and_validation(self):
        code = get_code(4, 2)
        many = encoded_stripes(code, 2, 64, pattern="ramp")
        assert all(code.verify_stripe(s) for s in many)
        with pytest.raises(ValueError):
            encoded_stripes(code, 0, 64)
